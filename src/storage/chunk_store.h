#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "array/chunk.h"
#include "array/coords.h"
#include "common/mutex.h"
#include "common/result.h"

namespace avm {

/// Identifier of an array registered in the catalog. Dense, assigned at
/// registration.
using ArrayId = uint32_t;

/// Shared, immutable-by-default reference to a stored chunk. Replicas created
/// during view maintenance alias the same Chunk through handles like this
/// one; the bytes are duplicated only when some store actually mutates its
/// copy (see ChunkStore::GetMutable).
using ChunkHandle = std::shared_ptr<const Chunk>;

namespace chunk_store_internal {
inline std::atomic<bool> g_aliasing_enabled{true};
inline std::atomic<int64_t> g_epoch_pins{0};
}  // namespace chunk_store_internal

/// Number of live view epochs (src/serve) currently pinning chunk handles,
/// process-wide. While this is nonzero, reader threads may clone handles out
/// of a pinned epoch at any time, so a `use_count() == 1` observation on a
/// store entry is not proof of sole ownership: the count is allowed to be
/// stale the instant it is read. GetMutable/GetOrCreate therefore skip the
/// sole-owner fast path and always deep-copy an existing entry while epochs
/// are live (see the class contract below).
inline int64_t EpochPinsActive() {
  return chunk_store_internal::g_epoch_pins.load(std::memory_order_acquire);
}

/// Called by ViewEpoch's constructor/destructor (one pin per live epoch).
/// Must be invoked on, or synchronized with, the thread that drives store
/// mutation so that a mutation observing zero pins genuinely precedes the
/// epoch's publication. Also mirrored to the store.epochs_live gauge.
void AddEpochPin();
void ReleaseEpochPin();

/// Process-wide switch for PutHandle's aliasing fast path. On (the default),
/// storing a handle is a refcount bump; off, it deep-copies the chunk —
/// the pre-COW behavior, kept switchable so microbench_transfer can measure
/// both modes in one binary. Not for production use.
inline bool ChunkAliasingEnabled() {
  return chunk_store_internal::g_aliasing_enabled.load(
      std::memory_order_relaxed);
}
inline void SetChunkAliasingEnabled(bool enabled) {
  chunk_store_internal::g_aliasing_enabled.store(enabled,
                                                 std::memory_order_relaxed);
}

/// The physical chunk container of one node: chunks of any array, keyed by
/// (array, chunk id). This models a node's local attached storage in the
/// shared-nothing architecture; a chunk "lives" on node k when k's store
/// holds it and the catalog maps it there. Replicas created during view
/// maintenance are additional entries in other nodes' stores that *alias*
/// the same Chunk — copy-on-write, so moving a chunk is a refcount bump and
/// the bytes are duplicated only when a store mutates its copy.
///
/// Concurrency contract: the chunk *map* is protected by an internal
/// annotated mutex (LockRank::kChunkStore), so concurrent map lookups and
/// handle puts are safe as such. What the lock deliberately does NOT cover
/// is the *chunk data* a Get/GetMutable/GetOrCreate result points at: those
/// escape the critical section by design (mutation happens outside the
/// lock), so mutating entry points still require the chunk to be externally
/// quiesced — in this codebase, the executor's control thread or a parallel
/// phase in which each task owns disjoint chunks. Concurrent *readers of
/// other stores* aliasing the same Chunk are always safe: a COW break
/// replaces this store's handle with a fresh deep copy and never touches
/// the shared original.
///
/// Snapshot serving (src/serve) adds concurrent readers that hold chunk
/// handles *without* touching any store: a published ViewEpoch pins a set of
/// handles, and reader threads may clone them at any moment. That breaks the
/// old use_count()-based sole-ownership test — the count can transiently
/// read 1 on the mutating thread while a reader is acquiring a handle — so
/// while any epoch is live (EpochPinsActive() > 0), GetMutable/GetOrCreate
/// unconditionally deep-copy existing entries before handing out a mutable
/// pointer. Chunks an epoch pinned are thus physically immutable for the
/// epoch's whole lifetime; the sole-owner in-place fast path applies only in
/// the quiesced, epoch-free configuration.
///
/// Keys are kept in an ordered map for deterministic iteration.
class ChunkStore {
 public:
  using Key = std::pair<ArrayId, ChunkId>;

  ChunkStore() = default;
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;
  // Non-movable: the internal mutex pins the store (Cluster keeps nodes in
  // a deque for exactly this reason).
  ChunkStore(ChunkStore&&) = delete;
  ChunkStore& operator=(ChunkStore&&) = delete;

  /// Stores (or replaces) a chunk by value (fresh data the store becomes the
  /// first owner of). Returns the stored chunk's size in bytes.
  uint64_t Put(ArrayId array, ChunkId chunk,
               Chunk data);  // avm-lint: allow(chunk-by-value)

  /// Stores (or replaces) a chunk by handle: the copy-free replica path.
  /// With aliasing enabled this is a refcount bump; otherwise it deep-copies
  /// (the measurement baseline). Returns the chunk's size in bytes.
  uint64_t PutHandle(ArrayId array, ChunkId chunk, ChunkHandle data);

  /// The chunk if present, else nullptr. Never triggers a copy.
  const Chunk* Get(ArrayId array, ChunkId chunk) const;

  /// The owning handle if present, else nullptr — the source side of a
  /// copy-free transfer. The handle keeps the Chunk alive past Erase/Put.
  ChunkHandle GetHandle(ArrayId array, ChunkId chunk) const;

  /// Mutable access with copy-on-write: if this store's entry aliases a
  /// Chunk that other handles still reference, the entry is first replaced
  /// by a deep copy (a "COW break", counted in telemetry), so the mutation
  /// never reaches the other replicas. Returns nullptr if absent. Any
  /// previously obtained raw pointer or handle for this key keeps observing
  /// the pre-break chunk.
  Chunk* GetMutable(ArrayId array, ChunkId chunk);

  /// The chunk, creating an empty one with the given layout if absent.
  /// Applies the same copy-on-write rule as GetMutable when the existing
  /// entry is shared.
  Chunk& GetOrCreate(ArrayId array, ChunkId chunk, size_t num_dims,
                     size_t num_attrs);

  bool Contains(ArrayId array, ChunkId chunk) const;

  /// True if the entry shares its Chunk with at least one other handle
  /// (another store's entry or an outstanding ChunkHandle).
  bool IsAliased(ArrayId array, ChunkId chunk) const;

  /// Drops the chunk; true if it was present. Dropping a primary copy is the
  /// caller's responsibility to coordinate with the catalog. The bytes are
  /// freed only when the last aliasing handle goes away.
  bool Erase(ArrayId array, ChunkId chunk);

  /// Number of chunks held (all arrays).
  size_t NumChunks() const {
    MutexLock lock(mu_);
    return chunks_.size();
  }

  /// Total bytes held (all arrays). Aliased replicas count in full on every
  /// store holding them: this is the *logical* residency the simulated cost
  /// model charges for, not host RSS.
  uint64_t SizeBytes() const;

  /// Resident chunks and *physical* buffer bytes split by representation.
  /// Unlike SizeBytes, these are actual footprints (PhysicalSizeBytes), the
  /// quantity the store.resident_{sparse,dense}_bytes gauges report.
  struct FormatResidency {
    size_t sparse_chunks = 0;
    size_t dense_chunks = 0;
    uint64_t sparse_bytes = 0;
    uint64_t dense_bytes = 0;
  };
  FormatResidency ResidencyByFormat() const;

  /// Invokes fn(array, chunk_id, chunk) for every stored chunk in key order.
  /// Iterates over a snapshot of the entries taken under the lock, with fn
  /// invoked outside it, so fn may call back into this store.
  void ForEach(const std::function<void(ArrayId, ChunkId, const Chunk&)>& fn)
      const AVM_EXCLUDES(mu_);

  /// Removes every chunk belonging to `array`; returns how many were dropped.
  size_t EraseArray(ArrayId array);

  /// Debug structural audit: every entry holds a live chunk that passes its
  /// internal row-storage/index contract. Aliased replicas are legal (they
  /// are the point of the handle design); each shared Chunk is still checked
  /// from every store referencing it. Geometry is not checked here (a store
  /// holds chunks of many arrays; pass the grid at the call sites that have
  /// it). Violations fire AVM_CHECK; O(total cells).
  void CheckInvariants() const;

 private:
  /// Protects the map (entries and their handle slots), not the pointed-to
  /// chunk bytes — see the class concurrency contract.
  mutable Mutex mu_{"ChunkStore.mu", LockRank::kChunkStore};

  /// Entries are non-const internally; Get/GetHandle project constness out.
  /// Every stored Chunk was created by a ChunkStore via make_shared<Chunk>
  /// (never from a genuinely const object), so PutHandle's
  /// const_pointer_cast back to the mutable type is sound.
  std::map<Key, std::shared_ptr<Chunk>> chunks_ AVM_GUARDED_BY(mu_);
};

}  // namespace avm
