#include "storage/chunk_store.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Residency gauges aggregate over every ChunkStore in the process (all
/// simulated nodes). They track deltas from the moment telemetry was
/// enabled, so chunks stored before enabling are not counted. Aliased
/// replicas count in full per holding store (logical residency, matching
/// SizeBytes).
void TrackResident(int64_t chunks_delta, int64_t bytes_delta) {
  if (chunks_delta != 0) {
    GaugeAdd(GaugeId::kStoreResidentChunks, chunks_delta);
  }
  if (bytes_delta != 0) GaugeAdd(GaugeId::kStoreResidentBytes, bytes_delta);
}

}  // namespace

void AddEpochPin() {
  chunk_store_internal::g_epoch_pins.fetch_add(1, std::memory_order_acq_rel);
  GaugeAdd(GaugeId::kStoreEpochsLive, 1);
}

void ReleaseEpochPin() {
  const int64_t before = chunk_store_internal::g_epoch_pins.fetch_sub(
      1, std::memory_order_acq_rel);
  AVM_CHECK(before > 0) << "epoch pin underflow";
  GaugeAdd(GaugeId::kStoreEpochsLive, -1);
}

uint64_t ChunkStore::Put(ArrayId array, ChunkId chunk,
                         Chunk data) {  // avm-lint: allow(chunk-by-value)
  const uint64_t bytes = data.SizeBytes();
  MutexLock lock(mu_);
  if (TelemetryEnabled()) {
    auto it = chunks_.find(Key{array, chunk});
    const bool existed = it != chunks_.end();
    TrackResident(existed ? 0 : 1,
                  static_cast<int64_t>(bytes) -
                      (existed ? static_cast<int64_t>(it->second->SizeBytes())
                               : 0));
  }
  chunks_.insert_or_assign(Key{array, chunk},
                           std::make_shared<Chunk>(std::move(data)));
  return bytes;
}

uint64_t ChunkStore::PutHandle(ArrayId array, ChunkId chunk,
                               ChunkHandle data) {
  AVM_CHECK(data != nullptr) << "PutHandle of a null chunk handle";
  const uint64_t bytes = data->SizeBytes();
  MutexLock lock(mu_);
  if (TelemetryEnabled()) {
    auto it = chunks_.find(Key{array, chunk});
    const bool existed = it != chunks_.end();
    TrackResident(existed ? 0 : 1,
                  static_cast<int64_t>(bytes) -
                      (existed ? static_cast<int64_t>(it->second->SizeBytes())
                               : 0));
  }
  std::shared_ptr<Chunk> entry;
  if (ChunkAliasingEnabled()) {
    entry = std::const_pointer_cast<Chunk>(std::move(data));
    CountAdd(CounterId::kStoreChunksAliased);
  } else {
    entry = std::make_shared<Chunk>(*data);
    CountAdd(CounterId::kStoreChunksDeepCopied);
  }
  chunks_.insert_or_assign(Key{array, chunk}, std::move(entry));
  return bytes;
}

const Chunk* ChunkStore::Get(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  return it == chunks_.end() ? nullptr : it->second.get();
}

ChunkHandle ChunkStore::GetHandle(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  return it == chunks_.end() ? nullptr : it->second;
}

Chunk* ChunkStore::GetMutable(ArrayId array, ChunkId chunk) {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  if (it == chunks_.end()) return nullptr;
  if (it->second.use_count() > 1 || EpochPinsActive() > 0) {
    // COW break: other replicas (or outstanding handles) may still
    // reference this Chunk; give this store a private copy before the
    // mutation. The use_count sole-owner fast path is sound only in the
    // quiesced configuration: whoever could concurrently bump the count
    // holds a handle already, so the count can only over-estimate. While a
    // view epoch is live that reasoning fails — snapshot readers clone
    // handles from the epoch on their own threads, so a transient
    // use_count of 1 proves nothing — and every mutation must copy.
    it->second = std::make_shared<Chunk>(*it->second);
    CountAdd(CounterId::kStoreCowBreaks);
  }
  return it->second.get();
}

Chunk& ChunkStore::GetOrCreate(ArrayId array, ChunkId chunk, size_t num_dims,
                               size_t num_attrs) {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  if (it == chunks_.end()) {
    it = chunks_
             .emplace(Key{array, chunk},
                      std::make_shared<Chunk>(num_dims, num_attrs))
             .first;
    if (TelemetryEnabled()) {
      TrackResident(1, static_cast<int64_t>(it->second->SizeBytes()));
    }
  } else if (it->second.use_count() > 1 || EpochPinsActive() > 0) {
    // Same conservative rule as GetMutable; a freshly created entry above
    // needs no copy (nothing can reference it yet).
    it->second = std::make_shared<Chunk>(*it->second);
    CountAdd(CounterId::kStoreCowBreaks);
  }
  return *it->second;
}

bool ChunkStore::Contains(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  return chunks_.find(Key{array, chunk}) != chunks_.end();
}

bool ChunkStore::IsAliased(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  return it != chunks_.end() && it->second.use_count() > 1;
}

bool ChunkStore::Erase(ArrayId array, ChunkId chunk) {
  MutexLock lock(mu_);
  if (TelemetryEnabled()) {
    auto it = chunks_.find(Key{array, chunk});
    if (it == chunks_.end()) return false;
    TrackResident(-1, -static_cast<int64_t>(it->second->SizeBytes()));
    chunks_.erase(it);
    return true;
  }
  return chunks_.erase(Key{array, chunk}) > 0;
}

uint64_t ChunkStore::SizeBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, chunk] : chunks_) total += chunk->SizeBytes();
  return total;
}

ChunkStore::FormatResidency ChunkStore::ResidencyByFormat() const {
  MutexLock lock(mu_);
  FormatResidency r;
  for (const auto& [key, chunk] : chunks_) {
    if (chunk->rep() == ChunkRep::kSparse) {
      ++r.sparse_chunks;
      r.sparse_bytes += chunk->PhysicalSizeBytes();
    } else {
      ++r.dense_chunks;
      r.dense_bytes += chunk->PhysicalSizeBytes();
    }
  }
  return r;
}

void ChunkStore::ForEach(
    const std::function<void(ArrayId, ChunkId, const Chunk&)>& fn) const {
  // Snapshot the entries (handles keep the chunks alive) so fn runs outside
  // the lock and may call back into this store without self-deadlocking.
  std::vector<std::pair<Key, ChunkHandle>> entries;
  {
    MutexLock lock(mu_);
    entries.reserve(chunks_.size());
    for (const auto& [key, chunk] : chunks_) entries.emplace_back(key, chunk);
  }
  for (const auto& [key, chunk] : entries) {
    fn(key.first, key.second, *chunk);
  }
}

void ChunkStore::CheckInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [key, chunk] : chunks_) {
    AVM_CHECK(chunk != nullptr)
        << "store entry (" << key.first << ", " << key.second
        << ") holds a null chunk handle";
    chunk->CheckInvariants();
  }
}

size_t ChunkStore::EraseArray(ArrayId array) {
  MutexLock lock(mu_);
  size_t dropped = 0;
  int64_t bytes_dropped = 0;
  const bool telemetry = TelemetryEnabled();
  auto it = chunks_.lower_bound(Key{array, 0});
  while (it != chunks_.end() && it->first.first == array) {
    if (telemetry) {
      bytes_dropped += static_cast<int64_t>(it->second->SizeBytes());
    }
    it = chunks_.erase(it);
    ++dropped;
  }
  if (telemetry && dropped > 0) {
    TrackResident(-static_cast<int64_t>(dropped), -bytes_dropped);
  }
  return dropped;
}

}  // namespace avm
