#include "storage/chunk_store.h"

#include <sstream>
#include <utility>
#include <vector>

#include "array/serialization.h"
#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Residency gauges aggregate over every ChunkStore in the process (all
/// simulated nodes). They track deltas from the moment telemetry was
/// enabled, so chunks stored before enabling are not counted. Aliased
/// replicas count in full per holding store (logical residency, matching
/// SizeBytes); spilled entries are excluded — they move to the
/// store.spilled_* gauges for the duration of the spill.
void TrackResident(int64_t chunks_delta, int64_t bytes_delta) {
  if (chunks_delta != 0) {
    GaugeAdd(GaugeId::kStoreResidentChunks, chunks_delta);
  }
  if (bytes_delta != 0) GaugeAdd(GaugeId::kStoreResidentBytes, bytes_delta);
}

uint64_t NextAccessTick() {
  return chunk_store_internal::g_access_tick.fetch_add(
      1, std::memory_order_relaxed);
}

}  // namespace

void AddEpochPin() {
  chunk_store_internal::g_epoch_pins.fetch_add(1, std::memory_order_acq_rel);
  GaugeAdd(GaugeId::kStoreEpochsLive, 1);
}

void ReleaseEpochPin() {
  const int64_t before = chunk_store_internal::g_epoch_pins.fetch_sub(
      1, std::memory_order_acq_rel);
  AVM_CHECK(before > 0) << "epoch pin underflow";
  GaugeAdd(GaugeId::kStoreEpochsLive, -1);
}

ChunkStore::~ChunkStore() {
  MutexLock lock(mu_);
  AVM_CHECK(backend_ == nullptr)
      << "ChunkStore destroyed with a buffer backend still attached; "
         "destroy (or Unregister from) the BufferManager first";
}

void ChunkStore::Deliver(const ResidencyNote& note) {
  if (note.backend != nullptr) {
    note.backend->NoteResident(note.array, note.chunk, note.bytes, note.stamp);
  }
}

void ChunkStore::TouchLocked(Entry& entry) const {
  if (entry.stamp != nullptr) {
    entry.stamp->store(NextAccessTick(), std::memory_order_relaxed);
  }
}

void ChunkStore::FaultInLocked(const Key& key, Entry& entry,
                               ResidencyNote* note) const {
  if (!entry.spilled()) return;
  AVM_CHECK(backend_ != nullptr)
      << "spilled entry (" << key.first << ", " << key.second
      << ") with no backend attached";
  Result<std::string> bytes = backend_->ReadSpill(entry.ticket);
  AVM_CHECK(bytes.ok()) << "spill read failed for chunk (" << key.first
                        << ", " << key.second
                        << "): " << bytes.status().ToString();
  std::istringstream in(*bytes, std::ios::in | std::ios::binary);
  Result<Chunk> chunk = LoadChunk(in);
  AVM_CHECK(chunk.ok()) << "spill decode failed for chunk (" << key.first
                        << ", " << key.second
                        << "): " << chunk.status().ToString();
  backend_->FreeSpill(entry.ticket);
  const int64_t disk_len = static_cast<int64_t>(entry.ticket.length);
  entry.chunk = std::make_shared<Chunk>(std::move(*chunk));
  entry.ticket = SpillTicket{};
  CountAdd(CounterId::kBufferReloads);
  CountAdd(CounterId::kBufferBytesReloaded, static_cast<uint64_t>(disk_len));
  GaugeAdd(GaugeId::kStoreSpilledChunks, -1);
  GaugeAdd(GaugeId::kStoreSpilledBytes, -disk_len);
  if (TelemetryEnabled()) {
    TrackResident(1, static_cast<int64_t>(entry.spilled_logical_bytes));
  }
  entry.spilled_logical_bytes = 0;
  if (note != nullptr) {
    note->backend = backend_;
    note->array = key.first;
    note->chunk = key.second;
    note->bytes = entry.chunk->PhysicalSizeBytes();
    note->stamp = entry.stamp;
  }
}

uint64_t ChunkStore::Put(ArrayId array, ChunkId chunk,
                         Chunk data) {  // avm-lint: allow(chunk-by-value)
  const uint64_t bytes = data.SizeBytes();
  ResidencyNote note;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    const bool existed = it != chunks_.end();
    const bool was_spilled = existed && it->second.spilled();
    if (was_spilled) {
      // Replacing a spilled entry: its on-disk copy is dead.
      backend_->FreeSpill(it->second.ticket);
      GaugeAdd(GaugeId::kStoreSpilledChunks, -1);
      GaugeAdd(GaugeId::kStoreSpilledBytes,
               -static_cast<int64_t>(it->second.ticket.length));
    }
    if (TelemetryEnabled()) {
      TrackResident(
          (!existed || was_spilled) ? 1 : 0,
          static_cast<int64_t>(bytes) -
              (existed && !was_spilled
                   ? static_cast<int64_t>(it->second.chunk->SizeBytes())
                   : 0));
    }
    Entry entry;
    entry.chunk = std::make_shared<Chunk>(std::move(data));
    if (backend_ != nullptr) {
      entry.stamp = (existed && it->second.stamp != nullptr)
                        ? it->second.stamp
                        : std::make_shared<std::atomic<uint64_t>>(0);
    }
    auto [pos, inserted] =
        chunks_.insert_or_assign(Key{array, chunk}, std::move(entry));
    TouchLocked(pos->second);
    if (backend_ != nullptr) {
      note = ResidencyNote{backend_, array, chunk,
                           pos->second.chunk->PhysicalSizeBytes(),
                           pos->second.stamp};
    }
  }
  Deliver(note);
  return bytes;
}

uint64_t ChunkStore::PutHandle(ArrayId array, ChunkId chunk,
                               ChunkHandle data) {
  AVM_CHECK(data != nullptr) << "PutHandle of a null chunk handle";
  const uint64_t bytes = data->SizeBytes();
  ResidencyNote note;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    const bool existed = it != chunks_.end();
    const bool was_spilled = existed && it->second.spilled();
    if (was_spilled) {
      backend_->FreeSpill(it->second.ticket);
      GaugeAdd(GaugeId::kStoreSpilledChunks, -1);
      GaugeAdd(GaugeId::kStoreSpilledBytes,
               -static_cast<int64_t>(it->second.ticket.length));
    }
    if (TelemetryEnabled()) {
      TrackResident(
          (!existed || was_spilled) ? 1 : 0,
          static_cast<int64_t>(bytes) -
              (existed && !was_spilled
                   ? static_cast<int64_t>(it->second.chunk->SizeBytes())
                   : 0));
    }
    Entry entry;
    if (ChunkAliasingEnabled()) {
      entry.chunk = std::const_pointer_cast<Chunk>(std::move(data));
      CountAdd(CounterId::kStoreChunksAliased);
    } else {
      entry.chunk = std::make_shared<Chunk>(*data);
      CountAdd(CounterId::kStoreChunksDeepCopied);
    }
    if (backend_ != nullptr) {
      entry.stamp = (existed && it->second.stamp != nullptr)
                        ? it->second.stamp
                        : std::make_shared<std::atomic<uint64_t>>(0);
    }
    auto [pos, inserted] =
        chunks_.insert_or_assign(Key{array, chunk}, std::move(entry));
    TouchLocked(pos->second);
    if (backend_ != nullptr) {
      note = ResidencyNote{backend_, array, chunk,
                           pos->second.chunk->PhysicalSizeBytes(),
                           pos->second.stamp};
    }
  }
  Deliver(note);
  return bytes;
}

const Chunk* ChunkStore::Get(ArrayId array, ChunkId chunk) const {
  ResidencyNote note;
  const Chunk* result = nullptr;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    if (it != chunks_.end()) {
      FaultInLocked(it->first, it->second, &note);
      TouchLocked(it->second);
      result = it->second.chunk.get();
    }
  }
  Deliver(note);
  return result;
}

ChunkHandle ChunkStore::GetHandle(ArrayId array, ChunkId chunk) const {
  ResidencyNote note;
  ChunkHandle result;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    if (it != chunks_.end()) {
      FaultInLocked(it->first, it->second, &note);
      TouchLocked(it->second);
      result = it->second.chunk;
    }
  }
  Deliver(note);
  return result;
}

Chunk* ChunkStore::GetMutable(ArrayId array, ChunkId chunk) {
  ResidencyNote note;
  Chunk* result = nullptr;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    if (it == chunks_.end()) return nullptr;
    Entry& entry = it->second;
    const bool faulted = entry.spilled();
    FaultInLocked(it->first, entry, &note);
    if (!faulted &&
        (entry.chunk.use_count() > 1 || EpochPinsActive() > 0)) {
      // COW break: other replicas (or outstanding handles) may still
      // reference this Chunk; give this store a private copy before the
      // mutation. The use_count sole-owner fast path is sound only in the
      // quiesced configuration: whoever could concurrently bump the count
      // holds a handle already, so the count can only over-estimate. While a
      // view epoch is live that reasoning fails — snapshot readers clone
      // handles from the epoch on their own threads, so a transient
      // use_count of 1 proves nothing — and every mutation must copy. A
      // just-reloaded chunk needs no copy even then: the spill gate proved
      // sole ownership, and nothing can have acquired a handle since.
      entry.chunk = std::make_shared<Chunk>(*entry.chunk);
      CountAdd(CounterId::kStoreCowBreaks);
    }
    TouchLocked(entry);
    result = entry.chunk.get();
  }
  Deliver(note);
  return result;
}

Chunk& ChunkStore::GetOrCreate(ArrayId array, ChunkId chunk, size_t num_dims,
                               size_t num_attrs) {
  ResidencyNote note;
  Chunk* result = nullptr;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    if (it == chunks_.end()) {
      Entry entry;
      entry.chunk = std::make_shared<Chunk>(num_dims, num_attrs);
      if (backend_ != nullptr) {
        entry.stamp = std::make_shared<std::atomic<uint64_t>>(0);
      }
      it = chunks_.emplace(Key{array, chunk}, std::move(entry)).first;
      if (TelemetryEnabled()) {
        TrackResident(1, static_cast<int64_t>(it->second.chunk->SizeBytes()));
      }
      if (backend_ != nullptr) {
        note = ResidencyNote{backend_, array, chunk,
                             it->second.chunk->PhysicalSizeBytes(),
                             it->second.stamp};
      }
    } else {
      Entry& entry = it->second;
      const bool faulted = entry.spilled();
      FaultInLocked(it->first, entry, &note);
      if (!faulted &&
          (entry.chunk.use_count() > 1 || EpochPinsActive() > 0)) {
        // Same conservative rule as GetMutable; a freshly created entry
        // above needs no copy (nothing can reference it yet), nor does a
        // just-reloaded one.
        entry.chunk = std::make_shared<Chunk>(*entry.chunk);
        CountAdd(CounterId::kStoreCowBreaks);
      }
    }
    TouchLocked(it->second);
    result = it->second.chunk.get();
  }
  Deliver(note);
  return *result;
}

bool ChunkStore::Contains(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  return chunks_.find(Key{array, chunk}) != chunks_.end();
}

bool ChunkStore::IsAliased(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  return it != chunks_.end() && !it->second.spilled() &&
         it->second.chunk.use_count() > 1;
}

bool ChunkStore::IsSpilled(ArrayId array, ChunkId chunk) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  return it != chunks_.end() && it->second.spilled();
}

bool ChunkStore::PeekResidentBytes(ArrayId array, ChunkId chunk,
                                   uint64_t* bytes) const {
  MutexLock lock(mu_);
  auto it = chunks_.find(Key{array, chunk});
  if (it == chunks_.end() || it->second.spilled()) return false;
  // A pinned chunk may be under active mutation by the pin holder (the
  // pin-while-mutating rule), so its buffers cannot be sized safely from
  // this thread. Leave *bytes untouched — the caller keeps its last-known
  // size until the pin is released and the next sweep resizes it.
  if (it->second.chunk.use_count() == 1) {
    *bytes = it->second.chunk->PhysicalSizeBytes();
  }
  return true;
}

bool ChunkStore::Erase(ArrayId array, ChunkId chunk) {
  BufferBackend* notify = nullptr;
  {
    MutexLock lock(mu_);
    auto it = chunks_.find(Key{array, chunk});
    if (it == chunks_.end()) return false;
    if (it->second.spilled()) {
      // No resident-gauge delta (spill already moved it out) and no
      // NoteDropped (the manager dropped its slot at spill time).
      backend_->FreeSpill(it->second.ticket);
      GaugeAdd(GaugeId::kStoreSpilledChunks, -1);
      GaugeAdd(GaugeId::kStoreSpilledBytes,
               -static_cast<int64_t>(it->second.ticket.length));
      chunks_.erase(it);
      return true;
    }
    if (TelemetryEnabled()) {
      TrackResident(-1, -static_cast<int64_t>(it->second.chunk->SizeBytes()));
    }
    notify = backend_;
    chunks_.erase(it);
  }
  if (notify != nullptr) notify->NoteDropped(array, chunk);
  return true;
}

uint64_t ChunkStore::SizeBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, entry] : chunks_) {
    total += entry.spilled() ? entry.spilled_logical_bytes
                             : entry.chunk->SizeBytes();
  }
  return total;
}

ChunkStore::FormatResidency ChunkStore::ResidencyByFormat() const {
  MutexLock lock(mu_);
  FormatResidency r;
  for (const auto& [key, entry] : chunks_) {
    if (entry.spilled()) {
      ++r.spilled_chunks;
      r.spilled_bytes += entry.ticket.length;
    } else if (entry.chunk->rep() == ChunkRep::kSparse) {
      ++r.sparse_chunks;
      r.sparse_bytes += entry.chunk->PhysicalSizeBytes();
    } else {
      ++r.dense_chunks;
      r.dense_bytes += entry.chunk->PhysicalSizeBytes();
    }
  }
  return r;
}

void ChunkStore::ForEach(
    const std::function<void(ArrayId, ChunkId, const Chunk&)>& fn) const {
  // Snapshot the entries (handles keep the chunks alive) so fn runs outside
  // the lock and may call back into this store without self-deadlocking.
  // Spilled entries are faulted in while building the snapshot; the handles
  // then pin every chunk against re-eviction until the loop finishes.
  std::vector<std::pair<Key, ChunkHandle>> entries;
  std::vector<ResidencyNote> notes;
  {
    MutexLock lock(mu_);
    entries.reserve(chunks_.size());
    for (auto& [key, entry] : chunks_) {
      if (entry.spilled()) {
        ResidencyNote note;
        FaultInLocked(key, entry, &note);
        notes.push_back(std::move(note));
      }
      entries.emplace_back(key, entry.chunk);
    }
  }
  for (const auto& note : notes) Deliver(note);
  for (const auto& [key, chunk] : entries) {
    fn(key.first, key.second, *chunk);
  }
}

void ChunkStore::ForEachKey(
    const std::function<void(ArrayId, ChunkId)>& fn) const {
  std::vector<Key> keys;
  {
    MutexLock lock(mu_);
    keys.reserve(chunks_.size());
    for (const auto& [key, entry] : chunks_) keys.push_back(key);
  }
  for (const Key& key : keys) fn(key.first, key.second);
}

void ChunkStore::CheckInvariants() const {
  MutexLock lock(mu_);
  for (const auto& [key, entry] : chunks_) {
    if (entry.spilled()) {
      AVM_CHECK(entry.ticket.length > 0)
          << "store entry (" << key.first << ", " << key.second
          << ") is spilled with an empty ticket";
      continue;
    }
    AVM_CHECK(entry.chunk != nullptr)
        << "store entry (" << key.first << ", " << key.second
        << ") holds a null chunk handle";
    entry.chunk->CheckInvariants();
  }
}

size_t ChunkStore::EraseArray(ArrayId array) {
  size_t dropped = 0;
  std::vector<ChunkId> resident_dropped;
  BufferBackend* notify = nullptr;
  {
    MutexLock lock(mu_);
    int64_t bytes_dropped = 0;
    const bool telemetry = TelemetryEnabled();
    notify = backend_;
    auto it = chunks_.lower_bound(Key{array, 0});
    while (it != chunks_.end() && it->first.first == array) {
      if (it->second.spilled()) {
        backend_->FreeSpill(it->second.ticket);
        GaugeAdd(GaugeId::kStoreSpilledChunks, -1);
        GaugeAdd(GaugeId::kStoreSpilledBytes,
                 -static_cast<int64_t>(it->second.ticket.length));
      } else {
        if (telemetry) {
          bytes_dropped += static_cast<int64_t>(it->second.chunk->SizeBytes());
        }
        if (notify != nullptr) resident_dropped.push_back(it->first.second);
      }
      it = chunks_.erase(it);
      ++dropped;
    }
    if (telemetry && !resident_dropped.empty()) {
      TrackResident(-static_cast<int64_t>(resident_dropped.size()),
                    -bytes_dropped);
    } else if (telemetry && dropped > 0 && notify == nullptr) {
      // No backend: everything erased was resident.
      TrackResident(-static_cast<int64_t>(dropped), -bytes_dropped);
    }
  }
  if (notify != nullptr) {
    for (const ChunkId chunk : resident_dropped) {
      notify->NoteDropped(array, chunk);
    }
  }
  return dropped;
}

std::vector<ChunkStore::ResidentChunkInfo> ChunkStore::AttachBufferBackend(
    BufferBackend* backend) {
  AVM_CHECK(backend != nullptr) << "AttachBufferBackend(nullptr)";
  std::vector<ResidentChunkInfo> infos;
  MutexLock lock(mu_);
  AVM_CHECK(backend_ == nullptr)
      << "a buffer backend is already attached to this store";
  backend_ = backend;
  infos.reserve(chunks_.size());
  for (auto& [key, entry] : chunks_) {
    entry.stamp = std::make_shared<std::atomic<uint64_t>>(NextAccessTick());
    infos.push_back(ResidentChunkInfo{key.first, key.second,
                                      entry.chunk->PhysicalSizeBytes(),
                                      entry.stamp});
  }
  return infos;
}

void ChunkStore::DetachBufferBackend() {
  MutexLock lock(mu_);
  if (backend_ == nullptr) return;
  for (auto& [key, entry] : chunks_) {
    // No NoteResident: the manager is tearing its registry down anyway.
    FaultInLocked(key, entry, nullptr);
    entry.stamp.reset();
  }
  backend_ = nullptr;
}

uint64_t ChunkStore::TrySpill(ArrayId array, ChunkId chunk) {
  MutexLock lock(mu_);
  if (backend_ == nullptr) return 0;
  auto it = chunks_.find(Key{array, chunk});
  if (it == chunks_.end()) return 0;
  Entry& entry = it->second;
  if (entry.spilled()) return 0;
  // The pin test: a use_count above 1 means some replica, outstanding
  // handle, or live epoch still references this Chunk. Sound under mu_ even
  // with concurrent readers — cloning a handle for THIS entry requires this
  // lock or an already-counted handle, so the count can only over-estimate.
  if (entry.chunk.use_count() > 1) return 0;
  std::ostringstream out(std::ios::out | std::ios::binary);
  const Status saved = SaveChunk(*entry.chunk, out);
  AVM_CHECK(saved.ok()) << "chunk spill serialization failed for ("
                        << array << ", " << chunk
                        << "): " << saved.ToString();
  const std::string bytes = std::move(out).str();
  Result<SpillTicket> ticket = backend_->WriteSpill(bytes);
  AVM_CHECK(ticket.ok()) << "spill write failed for (" << array << ", "
                         << chunk << "): " << ticket.status().ToString();
  const uint64_t physical = entry.chunk->PhysicalSizeBytes();
  const int64_t logical = static_cast<int64_t>(entry.chunk->SizeBytes());
  entry.spilled_logical_bytes = static_cast<uint64_t>(logical);
  entry.ticket = *ticket;
  entry.chunk.reset();
  CountAdd(CounterId::kBufferEvictions);
  CountAdd(CounterId::kBufferBytesSpilled, bytes.size());
  GaugeAdd(GaugeId::kStoreSpilledChunks, 1);
  GaugeAdd(GaugeId::kStoreSpilledBytes, static_cast<int64_t>(bytes.size()));
  if (TelemetryEnabled()) TrackResident(-1, -logical);
  return physical;
}

}  // namespace avm
