#include "storage/chunk_store.h"

namespace avm {

uint64_t ChunkStore::Put(ArrayId array, ChunkId chunk, Chunk data) {
  const uint64_t bytes = data.SizeBytes();
  chunks_.insert_or_assign(Key{array, chunk}, std::move(data));
  return bytes;
}

const Chunk* ChunkStore::Get(ArrayId array, ChunkId chunk) const {
  auto it = chunks_.find(Key{array, chunk});
  return it == chunks_.end() ? nullptr : &it->second;
}

Chunk* ChunkStore::GetMutable(ArrayId array, ChunkId chunk) {
  auto it = chunks_.find(Key{array, chunk});
  return it == chunks_.end() ? nullptr : &it->second;
}

Chunk& ChunkStore::GetOrCreate(ArrayId array, ChunkId chunk, size_t num_dims,
                               size_t num_attrs) {
  auto it = chunks_.find(Key{array, chunk});
  if (it == chunks_.end()) {
    it = chunks_.emplace(Key{array, chunk}, Chunk(num_dims, num_attrs)).first;
  }
  return it->second;
}

bool ChunkStore::Contains(ArrayId array, ChunkId chunk) const {
  return chunks_.find(Key{array, chunk}) != chunks_.end();
}

bool ChunkStore::Erase(ArrayId array, ChunkId chunk) {
  return chunks_.erase(Key{array, chunk}) > 0;
}

uint64_t ChunkStore::SizeBytes() const {
  uint64_t total = 0;
  for (const auto& [key, chunk] : chunks_) total += chunk.SizeBytes();
  return total;
}

void ChunkStore::ForEach(
    const std::function<void(ArrayId, ChunkId, const Chunk&)>& fn) const {
  for (const auto& [key, chunk] : chunks_) fn(key.first, key.second, chunk);
}

void ChunkStore::CheckInvariants() const {
  for (const auto& [key, chunk] : chunks_) chunk.CheckInvariants();
}

size_t ChunkStore::EraseArray(ArrayId array) {
  size_t dropped = 0;
  auto it = chunks_.lower_bound(Key{array, 0});
  while (it != chunks_.end() && it->first.first == array) {
    it = chunks_.erase(it);
    ++dropped;
  }
  return dropped;
}

}  // namespace avm
