#include "agg/aggregates.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace avm {

std::string_view AggregateFunctionName(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
  }
  return "?";
}

namespace {
size_t SlotsFor(AggregateFunction fn) {
  return fn == AggregateFunction::kAvg ? 2 : 1;
}
}  // namespace

Result<AggregateLayout> AggregateLayout::Create(
    std::vector<AggregateSpec> specs, size_t num_base_attrs) {
  if (specs.empty()) {
    return Status::InvalidArgument("a view needs at least one aggregate");
  }
  std::vector<size_t> slots;
  slots.reserve(specs.size());
  size_t next = 0;
  for (auto& spec : specs) {
    if (spec.fn != AggregateFunction::kCount &&
        spec.attr_index >= num_base_attrs) {
      return Status::InvalidArgument(
          "aggregate references attribute index " +
          std::to_string(spec.attr_index) + " but the base array has " +
          std::to_string(num_base_attrs) + " attributes");
    }
    if (spec.output_name.empty()) {
      spec.output_name = std::string(AggregateFunctionName(spec.fn)) + "_" +
                         std::to_string(spec.attr_index);
    }
    slots.push_back(next);
    next += SlotsFor(spec.fn);
  }
  return AggregateLayout(std::move(specs), std::move(slots), next);
}

bool AggregateLayout::SupportsRetraction() const {
  for (const auto& spec : specs_) {
    if (spec.fn == AggregateFunction::kMin ||
        spec.fn == AggregateFunction::kMax) {
      return false;
    }
  }
  return true;
}

void AggregateLayout::InitState(std::span<double> state) const {
  AVM_CHECK_EQ(state.size(), num_slots_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const size_t s = slot_of_[i];
    switch (specs_[i].fn) {
      case AggregateFunction::kCount:
      case AggregateFunction::kSum:
        state[s] = 0.0;
        break;
      case AggregateFunction::kAvg:
        state[s] = 0.0;      // sum
        state[s + 1] = 0.0;  // count
        break;
      case AggregateFunction::kMin:
        state[s] = std::numeric_limits<double>::infinity();
        break;
      case AggregateFunction::kMax:
        state[s] = -std::numeric_limits<double>::infinity();
        break;
    }
  }
}

Status AggregateLayout::UpdateState(std::span<double> state,
                                    std::span<const double> right_values,
                                    int multiplicity) const {
  AVM_CHECK_EQ(state.size(), num_slots_);
  const double m = static_cast<double>(multiplicity);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const size_t s = slot_of_[i];
    switch (specs_[i].fn) {
      case AggregateFunction::kCount:
        state[s] += m;
        break;
      case AggregateFunction::kSum:
        state[s] += m * right_values[specs_[i].attr_index];
        break;
      case AggregateFunction::kAvg:
        state[s] += m * right_values[specs_[i].attr_index];
        state[s + 1] += m;
        break;
      case AggregateFunction::kMin:
        if (multiplicity < 0) {
          return Status::FailedPrecondition(
              "MIN does not support retraction");
        }
        state[s] = std::min(state[s], right_values[specs_[i].attr_index]);
        break;
      case AggregateFunction::kMax:
        if (multiplicity < 0) {
          return Status::FailedPrecondition(
              "MAX does not support retraction");
        }
        state[s] = std::max(state[s], right_values[specs_[i].attr_index]);
        break;
    }
  }
  return Status::OK();
}

void AggregateLayout::MergeState(std::span<double> dst,
                                 std::span<const double> src) const {
  AVM_CHECK_EQ(dst.size(), num_slots_);
  AVM_CHECK_EQ(src.size(), num_slots_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const size_t s = slot_of_[i];
    switch (specs_[i].fn) {
      case AggregateFunction::kCount:
      case AggregateFunction::kSum:
        dst[s] += src[s];
        break;
      case AggregateFunction::kAvg:
        dst[s] += src[s];
        dst[s + 1] += src[s + 1];
        break;
      case AggregateFunction::kMin:
        dst[s] = std::min(dst[s], src[s]);
        break;
      case AggregateFunction::kMax:
        dst[s] = std::max(dst[s], src[s]);
        break;
    }
  }
}

void AggregateLayout::Finalize(std::span<const double> state,
                               std::span<double> out) const {
  AVM_CHECK_EQ(state.size(), num_slots_);
  AVM_CHECK_EQ(out.size(), specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    const size_t s = slot_of_[i];
    switch (specs_[i].fn) {
      case AggregateFunction::kCount:
      case AggregateFunction::kSum:
      case AggregateFunction::kMin:
      case AggregateFunction::kMax:
        out[i] = state[s];
        break;
      case AggregateFunction::kAvg:
        out[i] = state[s + 1] == 0.0
                     ? std::numeric_limits<double>::quiet_NaN()
                     : state[s] / state[s + 1];
        break;
    }
  }
}

bool AggregateLayout::IsIdentity(std::span<const double> state) const {
  AVM_CHECK_EQ(state.size(), num_slots_);
  // Additive slots use a small absolute tolerance: retracting the same
  // floating-point values in a different order can leave ~1e-16 residue.
  constexpr double kEps = 1e-9;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const size_t s = slot_of_[i];
    switch (specs_[i].fn) {
      case AggregateFunction::kCount:
      case AggregateFunction::kSum:
        if (std::abs(state[s]) > kEps) return false;
        break;
      case AggregateFunction::kAvg:
        if (std::abs(state[s]) > kEps || std::abs(state[s + 1]) > kEps) {
          return false;
        }
        break;
      case AggregateFunction::kMin:
        if (state[s] != std::numeric_limits<double>::infinity()) return false;
        break;
      case AggregateFunction::kMax:
        if (state[s] != -std::numeric_limits<double>::infinity()) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::vector<Attribute> AggregateLayout::StateAttributes() const {
  std::vector<Attribute> attrs;
  attrs.reserve(num_slots_);
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].fn == AggregateFunction::kAvg) {
      attrs.push_back({specs_[i].output_name + ".sum", AttributeType::kDouble});
      attrs.push_back(
          {specs_[i].output_name + ".count", AttributeType::kDouble});
    } else {
      attrs.push_back({specs_[i].output_name, AttributeType::kDouble});
    }
  }
  return attrs;
}

}  // namespace avm
