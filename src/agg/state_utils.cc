#include "agg/state_utils.h"

#include <vector>

namespace avm {

Result<size_t> StripIdentityCells(SparseArray* states,
                                  const AggregateLayout& layout) {
  if (states == nullptr) return Status::InvalidArgument("null array");
  if (states->schema().num_attrs() != layout.num_state_slots()) {
    return Status::InvalidArgument(
        "array attributes do not match the aggregate state layout");
  }
  std::vector<CellCoord> doomed;
  states->ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double> state) {
        if (layout.IsIdentity(state)) {
          doomed.emplace_back(coord.begin(), coord.end());
        }
      });
  for (const auto& coord : doomed) states->Erase(coord);
  return doomed.size();
}

}  // namespace avm
