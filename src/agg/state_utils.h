#pragma once

#include "agg/aggregates.h"
#include "array/sparse_array.h"
#include "common/status.h"

namespace avm {

/// Removes every cell whose aggregate state equals the identity (no
/// surviving contributions) from a state array. After retractions — the
/// minus half of a ∆-shape differential query — cells can be left with
/// COUNT 0 / empty AVG; semantically those cells are empty, and stripping
/// them makes state arrays comparable to from-scratch computations.
/// Returns the number of cells removed.
Result<size_t> StripIdentityCells(SparseArray* states,
                                  const AggregateLayout& layout);

}  // namespace avm

