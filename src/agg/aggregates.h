#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "array/schema.h"
#include "common/result.h"

namespace avm {

/// The standard SQL aggregate functions of Section 3. COUNT, SUM, and AVG
/// are fully incremental (they commute, associate, and support retraction
/// via negative multiplicities). MIN and MAX are maintainable under
/// insert-only workloads — the paper's astronomy use case — and reject
/// retraction.
enum class AggregateFunction { kCount, kSum, kAvg, kMin, kMax };

std::string_view AggregateFunctionName(AggregateFunction fn);

/// One aggregate in a view definition: the function plus the index of the
/// joined (right-operand) attribute it consumes. COUNT ignores the index.
struct AggregateSpec {
  AggregateFunction fn = AggregateFunction::kCount;
  size_t attr_index = 0;
  /// Name of the output attribute in the view schema (e.g. "cnt").
  std::string output_name;
};

/// Flat layout of the aggregate *state* attributes a view cell stores. Most
/// functions use one slot; AVG stores (sum, count) in two slots so partial
/// states merge exactly. Finalization maps state slots to the user-visible
/// outputs (one per spec).
class AggregateLayout {
 public:
  /// Validates the specs against the base array's attribute count.
  static Result<AggregateLayout> Create(std::vector<AggregateSpec> specs,
                                        size_t num_base_attrs);

  const std::vector<AggregateSpec>& specs() const { return specs_; }
  size_t num_specs() const { return specs_.size(); }

  /// Number of state slots a view cell stores.
  size_t num_state_slots() const { return num_slots_; }

  /// First state slot of spec `i`.
  size_t slot_of(size_t i) const { return slot_of_[i]; }

  /// True if every spec supports retraction (negative multiplicity).
  bool SupportsRetraction() const;

  /// Writes the identity state (the state of "no rows") into `state`.
  void InitState(std::span<double> state) const;

  /// Folds one joined row into `state`. `right_values` are the right
  /// operand's cell attributes; `multiplicity` is +1 for an insert-side
  /// contribution, -1 for a retraction. Fails for retraction on MIN/MAX.
  Status UpdateState(std::span<double> state,
                     std::span<const double> right_values,
                     int multiplicity) const;

  /// Merges a partial state `src` into `dst` (slot-wise: add for
  /// COUNT/SUM/AVG, min/max for MIN/MAX). This is the V + ∆V merge
  /// primitive; it is exact because states are designed to be mergeable.
  void MergeState(std::span<double> dst, std::span<const double> src) const;

  /// Computes the user-visible outputs (one per spec) from a state. AVG of
  /// zero rows yields NaN; MIN/MAX of zero rows yield +/-infinity (their
  /// identities).
  void Finalize(std::span<const double> state, std::span<double> out) const;

  /// True when a state equals the identity (no surviving contributions);
  /// such view cells can be garbage-collected after retractions.
  bool IsIdentity(std::span<const double> state) const;

  /// The state attributes for a view schema (names derived from outputs,
  /// e.g. "cnt", "avg_s.sum", "avg_s.count").
  std::vector<Attribute> StateAttributes() const;

 private:
  AggregateLayout(std::vector<AggregateSpec> specs, std::vector<size_t> slots,
                  size_t num_slots)
      : specs_(std::move(specs)),
        slot_of_(std::move(slots)),
        num_slots_(num_slots) {}

  std::vector<AggregateSpec> specs_;
  std::vector<size_t> slot_of_;
  size_t num_slots_;
};

}  // namespace avm

