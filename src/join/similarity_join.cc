#include "join/similarity_join.h"

#include <map>
#include <set>
#include <utility>

#include "join/compiled_shape.h"
#include "join/fragment_merge.h"
#include "join/join_kernel.h"
#include "join/pair_enumeration.h"

namespace avm {

Result<JoinExecutionStats> ExecuteDistributedJoinAggregate(
    const DistributedArray& left, const DistributedArray& right,
    const SimilarityJoinSpec& spec, DistributedArray* result) {
  if (result == nullptr) {
    return Status::InvalidArgument("null result array");
  }
  Cluster* cluster = left.cluster();
  Catalog* catalog = left.catalog();
  if (right.cluster() != cluster || result->cluster() != cluster) {
    return Status::InvalidArgument("operands live on different clusters");
  }
  if (spec.shape.num_dims() != right.schema().num_dims()) {
    return Status::InvalidArgument(
        "shape dimensionality does not match the right operand");
  }

  JoinExecutionStats stats;
  const ChunkGrid& lgrid = left.grid();
  const ChunkGrid& rgrid = right.grid();
  const ViewTarget target{&spec.group_dims, &result->grid()};
  // Compile the shape once for the whole join: every chunk pair below shares
  // the precomputed offset linearization.
  AVM_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledShape> compiled,
      CompiledShapeCache::Global().Get(spec.shape, spec.mapping, rgrid));

  // Fragments of partial aggregate states, grouped by the node that
  // produced them.
  std::map<NodeId, std::map<ChunkId, Chunk>> fragments_by_node;
  // (left chunk, node) pairs already shipped, so each replica moves once.
  std::set<std::pair<ChunkId, NodeId>> shipped;

  for (ChunkId p : catalog->ChunkIdsOf(left.id())) {
    AVM_ASSIGN_OR_RETURN(NodeId p_node, catalog->NodeOf(left.id(), p));
    const std::vector<ChunkId> partners = EnumerateJoinPartners(
        lgrid, p, spec.mapping, spec.shape, rgrid, [&](ChunkId q) {
          return catalog->HasChunk(right.id(), q);
        });
    for (ChunkId q : partners) {
      AVM_ASSIGN_OR_RETURN(NodeId join_node, catalog->NodeOf(right.id(), q));
      // Co-locate the left chunk with the right chunk's node (once per
      // replica target).
      if (p_node != join_node && shipped.insert({p, join_node}).second) {
        AVM_RETURN_IF_ERROR(
            cluster->TransferChunk(left.id(), p, p_node, join_node));
        stats.bytes_shipped += catalog->ChunkBytes(left.id(), p);
      }
      // Handles pin both operands across the kernel run: a concurrently
      // rebalancing buffer manager must not evict them mid-join.
      const ChunkHandle left_chunk =
          cluster->store(join_node).GetHandle(left.id(), p);
      const ChunkHandle right_chunk =
          cluster->store(join_node).GetHandle(right.id(), q);
      if (left_chunk == nullptr || right_chunk == nullptr) {
        return Status::Internal("operand chunk missing from its node store");
      }
      cluster->ChargeJoin(join_node, left_chunk->SizeBytes() +
                                         right_chunk->SizeBytes());
      const RightOperand rop{right_chunk.get(), q, &rgrid};
      AVM_RETURN_IF_ERROR(JoinAggregateChunkPair(
          *left_chunk, rop, *compiled, spec.layout, target,
          /*multiplicity=*/1, &fragments_by_node[join_node]));
      ++stats.chunk_pairs;
    }
  }

  // Ship fragments to each result chunk's home and merge.
  for (auto& [join_node, fragments] : fragments_by_node) {
    for (auto& [v, fragment] : fragments) {
      NodeId home;
      auto assigned = catalog->NodeOf(result->id(), v);
      if (assigned.ok()) {
        home = assigned.value();
      } else {
        home = catalog->PlaceByStrategy(result->id(), v,
                                        cluster->num_workers());
      }
      if (home != join_node) {
        cluster->ChargeNetwork(join_node, fragment.SizeBytes());
        stats.bytes_shipped += fragment.SizeBytes();
      }
      AVM_RETURN_IF_ERROR(
          MergeStateFragment(result, v, fragment, spec.layout, home));
      ++stats.fragments;
    }
  }
  return stats;
}

}  // namespace avm
