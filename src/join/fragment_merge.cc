#include "join/fragment_merge.h"

#include <vector>

namespace avm {

Status MergeStateFragment(DistributedArray* target, ChunkId v,
                          const Chunk& fragment, const AggregateLayout& layout,
                          NodeId fallback_node) {
  if (fragment.num_attrs() != layout.num_state_slots()) {
    return Status::InvalidArgument(
        "fragment attribute count does not match the aggregate state layout");
  }
  NodeId node;
  auto existing = target->catalog()->NodeOf(target->id(), v);
  if (existing.ok()) {
    node = existing.value();
  } else {
    node = fallback_node;
    target->catalog()->AssignChunk(target->id(), v, node);
  }
  ChunkStore& store = target->cluster()->store(node);
  Chunk& dst = store.GetOrCreate(target->id(), v, fragment.num_dims(),
                                 fragment.num_attrs());
  // Pin-while-mutating: the handle keeps `dst` evict-proof across the merge
  // (GetHandle never COW-breaks, so it aliases the chunk GetOrCreate
  // returned).
  const ChunkHandle pin = store.GetHandle(target->id(), v);
  dst.Reserve(dst.num_cells() + fragment.num_cells());

  std::vector<double> identity(layout.num_state_slots());
  layout.InitState(identity);
  fragment.ForEachCellWithOffset([&](uint64_t offset,
                                     std::span<const int64_t> coord,
                                     std::span<const double> values) {
    double* state = dst.GetMutableCell(offset);
    if (state == nullptr) {
      dst.UpsertCell(offset, coord, identity);
      state = dst.GetMutableCell(offset);
    }
    layout.MergeState({state, layout.num_state_slots()}, values);
  });
  dst.MaybeAdaptRepresentation(target->grid(), v);
  target->catalog()->SetChunkBytes(target->id(), v, dst.SizeBytes());
  return Status::OK();
}

}  // namespace avm
