#pragma once

#include <cstdint>
#include <vector>

#include "agg/aggregates.h"
#include "cluster/distributed_array.h"
#include "common/result.h"
#include "join/mapping.h"
#include "shape/shape.h"

namespace avm {

/// Specification of a shape-based similarity join with group-by aggregation:
///     SELECT aggs FROM left SIMILARITY JOIN right ON M WITH SHAPE σ
///     GROUP BY left dims in `group_dims`.
struct SimilarityJoinSpec {
  DimMapping mapping = DimMapping::Identity(1);
  Shape shape = Shape(1);
  AggregateLayout layout =
      AggregateLayout::Create({AggregateSpec{}}, 0).value();
  /// Indices of the left operand's dimensions the output is keyed on.
  std::vector<size_t> group_dims;
};

/// Execution statistics of one distributed join.
struct JoinExecutionStats {
  uint64_t chunk_pairs = 0;      // kernel invocations
  uint64_t bytes_shipped = 0;    // operand replicas + result fragments
  uint64_t fragments = 0;        // result fragments produced
};

/// Executes the complete distributed similarity-join aggregate — the array
/// similarity join substrate of [Zhao et al., SIGMOD 2016] that the paper
/// builds on — writing the aggregated output into `result` (an empty
/// DistributedArray whose schema has the layout's state attributes and the
/// grouped dimensions).
///
/// Scheduling follows the substrate's convention: each chunk pair joins at
/// the node storing the right (inner) chunk; left chunks are shipped there
/// once (replica-tracked) and charged to the sender's network clock; result
/// fragments ship from the join node to the result chunk's home (existing
/// assignment, else the result array's placement strategy).
///
/// A self-join is simply a call with `left` and `right` bound to the same
/// array: iterating every chunk as the left operand generates each ordered
/// chunk pair exactly once.
Result<JoinExecutionStats> ExecuteDistributedJoinAggregate(
    const DistributedArray& left, const DistributedArray& right,
    const SimilarityJoinSpec& spec, DistributedArray* result);

}  // namespace avm

