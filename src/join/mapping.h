#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "array/coords.h"
#include "common/result.h"

namespace avm {

/// The mapping function M of the similarity join definition: positions a
/// left-operand cell in the right operand's coordinate space, where the
/// shape σ is then applied around it.
///
/// We support per-output-dimension structural maps — pick a source dimension
/// and add a constant offset — which cover the paper's uses (identity for
/// self-joins and equi-joins on dimensions, plus translations and dimension
/// permutations). Each map is monotone per dimension, so boxes map to boxes
/// and chunk-level planning stays metadata-only.
class DimMapping {
 public:
  /// One output dimension: right_coord[d] = left_coord[source_dim] + offset.
  struct Term {
    size_t source_dim = 0;
    int64_t offset = 0;
  };

  /// The identity mapping over `num_dims` dimensions.
  static DimMapping Identity(size_t num_dims);

  /// A general structural mapping; `terms[d]` defines output dimension d.
  /// Fails if a term references a source dimension >= num_left_dims.
  static Result<DimMapping> Create(size_t num_left_dims,
                                   std::vector<Term> terms);

  size_t num_left_dims() const { return num_left_dims_; }
  size_t num_right_dims() const { return terms_.size(); }
  const std::vector<Term>& terms() const { return terms_; }

  /// True for the identity (arity preserved, term d reads dim d, offset 0).
  bool IsIdentity() const;

  /// Maps a left-space coordinate into right space.
  CellCoord Apply(const CellCoord& left) const;
  void ApplyInto(std::span<const int64_t> left, CellCoord* right) const;

  /// Maps a left-space box into the right-space box covering its image.
  Box ApplyBox(const Box& left) const;

  /// The left-space box of all cells whose image lies in `right_box`,
  /// starting from `left_domain` (typically the left array's full ranges;
  /// source dims no mapping term reads stay unconstrained). The result may
  /// be empty (some lo > hi); check with IsEmptyBox.
  Box PreimageBox(const Box& right_box, const Box& left_domain) const;

 private:
  DimMapping(size_t num_left_dims, std::vector<Term> terms)
      : num_left_dims_(num_left_dims), terms_(std::move(terms)) {}

  size_t num_left_dims_;
  std::vector<Term> terms_;
};

}  // namespace avm

