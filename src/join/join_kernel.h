#ifndef AVM_JOIN_JOIN_KERNEL_H_
#define AVM_JOIN_JOIN_KERNEL_H_

#include <map>

#include "agg/aggregates.h"
#include "array/chunk.h"
#include "array/chunk_grid.h"
#include "array/coords.h"
#include "join/mapping.h"
#include "shape/shape.h"

namespace avm {

/// Inputs a join kernel needs about the right operand: its chunk's data,
/// identity, and geometry. The kernel only pairs a left cell with right
/// cells *inside this chunk*; partner enumeration guarantees that, across
/// the partner set of a left chunk, every qualifying (left, right) cell pair
/// is produced exactly once.
struct RightOperand {
  const Chunk* chunk = nullptr;
  ChunkId chunk_id = 0;
  const ChunkGrid* grid = nullptr;
};

/// Grouping/output geometry: which left dimensions the view keys on and the
/// view's chunk grid, so emitted aggregate states land in per-view-chunk
/// fragments.
struct ViewTarget {
  const std::vector<size_t>* group_dims = nullptr;
  const ChunkGrid* view_grid = nullptr;
};

/// Executes the fused similarity-join + group-by-aggregate for one chunk
/// pair: every cell x of `left` is joined with the cells of the right chunk
/// lying in shape σ around M(x), and each match folds the right cell's
/// attributes into the aggregate state keyed by x's projection onto the
/// group dimensions.
///
/// `multiplicity` is +1 to add contributions and -1 to retract them (the
/// signed halves of a ∆-shape differential query).
///
/// Partial states are accumulated into `out_fragments`, one sparse fragment
/// chunk per affected view chunk; fragments from different pairs/nodes merge
/// exactly because aggregate states are mergeable.
///
/// The kernel picks the cheaper of two strategies per pair: probe each of
/// the |σ| offsets around every left cell (good for small shapes), or scan
/// the right chunk's cells and test offset membership in σ (good when the
/// shape is larger than the right chunk is dense, e.g. PTF-5's 1000-offset
/// space-time shape).
Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const DimMapping& mapping, const Shape& shape,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments);

}  // namespace avm

#endif  // AVM_JOIN_JOIN_KERNEL_H_
