#pragma once

#include <map>

#include "agg/aggregates.h"
#include "array/chunk.h"
#include "array/chunk_grid.h"
#include "array/coords.h"
#include "join/compiled_shape.h"
#include "join/mapping.h"
#include "shape/shape.h"

namespace avm {

/// Inputs a join kernel needs about the right operand: its chunk's data,
/// identity, and geometry. The kernel only pairs a left cell with right
/// cells *inside this chunk*; partner enumeration guarantees that, across
/// the partner set of a left chunk, every qualifying (left, right) cell pair
/// is produced exactly once.
struct RightOperand {
  const Chunk* chunk = nullptr;
  ChunkId chunk_id = 0;
  const ChunkGrid* grid = nullptr;
};

/// Grouping/output geometry: which left dimensions the view keys on and the
/// view's chunk grid, so emitted aggregate states land in per-view-chunk
/// fragments.
struct ViewTarget {
  const std::vector<size_t>* group_dims = nullptr;
  const ChunkGrid* view_grid = nullptr;
};

/// The two inner-loop strategies of the chunk-join kernel.
enum class JoinStrategy {
  kProbeOffsets,  // probe each of the |σ| offsets around every left cell
  kScanRight,     // scan the right chunk's cells, test membership in σ
};

/// Measured relative inner-operation costs of the two strategies (unit: one
/// sparse probe). A sparse probe is a single add plus a flat-index hash
/// lookup; a scan step builds the per-dimension delta vector and tests it
/// against the shape's coordinate hash set. The ratio comes from
/// microbench_join's sparse calibration configs (2% density, low hit rate,
/// so the strategy-independent per-match fold cost stays out of the
/// numbers): ~6 ns per probe vs ~14-16 ns per scanned cell, i.e. ~2.5
/// probes per scan step.
inline constexpr double kProbeCostPerOffset = 1.0;
inline constexpr double kScanCostPerRightCell = 2.5;

/// Dense-path cost terms, same unit. Probing a dense chunk replaces the
/// hash lookup with a bitmap test plus an array load (and, on the interior
/// fast path, whole runs of probes collapse into one masked popcount and a
/// unit-stride lane walk); the forced-dense column of microbench_join's
/// calibration configs (measured_costs.dense_probe_ns in BENCH_join.json)
/// puts it at ~1-1.5 ns per probed offset, i.e. ~4x under the sparse
/// probe. A dense scan step skips the coordinate materialization the sparse
/// scan pays for, but still tests shape membership per cell. These terms
/// are what shifts the probe/scan break-even for dense right chunks —
/// probing stays profitable against chunks ~4x fuller — and what the
/// densification thresholds in array/chunk.h were chosen against.
inline constexpr double kDenseProbeCostPerOffset = 0.25;
inline constexpr double kDenseScanCostPerRightCell = 2.0;

/// Picks the cheaper strategy for one chunk pair by comparing
/// |σ|·cost_probe against right_cells·cost_scan. Deterministic, so the
/// accumulation order — and therefore every floating-point sum — is a pure
/// function of the operands (the right chunk's representation included).
inline JoinStrategy ChooseJoinStrategy(size_t shape_size, size_t right_cells,
                                       ChunkRep right_rep = ChunkRep::kSparse) {
  const bool dense = right_rep == ChunkRep::kDense;
  const double probe_cost =
      static_cast<double>(shape_size) *
      (dense ? kDenseProbeCostPerOffset : kProbeCostPerOffset);
  const double scan_cost =
      static_cast<double>(right_cells) *
      (dense ? kDenseScanCostPerRightCell : kScanCostPerRightCell);
  return probe_cost <= scan_cost ? JoinStrategy::kProbeOffsets
                                 : JoinStrategy::kScanRight;
}

/// Executes the fused similarity-join + group-by-aggregate for one chunk
/// pair: every cell x of `left` is joined with the cells of the right chunk
/// lying in shape σ around M(x), and each match folds the right cell's
/// attributes into the aggregate state keyed by x's projection onto the
/// group dimensions.
///
/// `multiplicity` is +1 to add contributions and -1 to retract them (the
/// signed halves of a ∆-shape differential query).
///
/// Partial states are accumulated into `out_fragments`, one sparse fragment
/// chunk per affected view chunk; fragments from different pairs/nodes merge
/// exactly because aggregate states are mergeable.
///
/// The kernel picks the cheaper of two strategies per pair (see
/// ChooseJoinStrategy). Under the probe strategy, left cells whose probe
/// neighborhood lies entirely inside the right chunk take the compiled
/// interior fast path — one precomputed offset add per probe; only cells on
/// chunk faces/edges/corners pay the per-dimension boundary checks.
Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const CompiledShape& compiled,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments);

/// Convenience entry that memoizes the shape compilation through
/// CompiledShapeCache::Global(). Call sites issuing many chunk-joins under
/// one (shape, mapping, grid) should fetch the compilation once and use the
/// overload above to keep the cache lock out of the hot loop.
Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const DimMapping& mapping, const Shape& shape,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments);

}  // namespace avm

