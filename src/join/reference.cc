#include "join/reference.h"

#include <vector>

namespace avm {

Result<SparseArray> ReferenceJoinAggregate(const SparseArray& left,
                                           const SparseArray& right,
                                           const SimilarityJoinSpec& spec,
                                           const ArraySchema& result_schema) {
  if (spec.shape.num_dims() != right.schema().num_dims()) {
    return Status::InvalidArgument(
        "shape dimensionality does not match the right operand");
  }
  if (result_schema.num_attrs() != spec.layout.num_state_slots()) {
    return Status::InvalidArgument(
        "result schema does not match the aggregate state layout");
  }
  for (size_t d : spec.group_dims) {
    if (d >= left.schema().num_dims()) {
      return Status::InvalidArgument("group dim out of range");
    }
  }

  SparseArray result(result_schema);
  std::vector<double> identity(spec.layout.num_state_slots());
  spec.layout.InitState(identity);

  Status status = Status::OK();
  CellCoord base;
  CellCoord probe;
  CellCoord group_coord(spec.group_dims.size());
  left.ForEachCell([&](std::span<const int64_t> coord,
                       std::span<const double> values) {
    (void)values;
    if (!status.ok()) return;
    spec.mapping.ApplyInto(coord, &base);
    probe.resize(base.size());
    for (const auto& offset : spec.shape.offsets()) {
      for (size_t d = 0; d < base.size(); ++d) probe[d] = base[d] + offset[d];
      auto partner = right.Get(probe);
      if (!partner.ok()) continue;
      for (size_t d = 0; d < spec.group_dims.size(); ++d) {
        group_coord[d] = coord[spec.group_dims[d]];
      }
      // Fetch-or-create the state cell, then fold the partner in.
      if (!result.Has(group_coord)) {
        status = result.Set(group_coord, identity);
        if (!status.ok()) return;
      }
      Chunk* chunk = result.GetMutableChunk(result.grid().IdOfCell(group_coord));
      double* state =
          chunk->GetMutableCell(result.grid().InChunkOffset(group_coord));
      status = spec.layout.UpdateState(
          {state, spec.layout.num_state_slots()},
          {partner.value(), right.schema().num_attrs()}, 1);
      if (!status.ok()) return;
    }
  });
  if (!status.ok()) return status;
  return result;
}

}  // namespace avm
