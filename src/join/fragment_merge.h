#pragma once

#include "agg/aggregates.h"
#include "array/chunk.h"
#include "cluster/distributed_array.h"
#include "common/status.h"

namespace avm {

/// Merges a fragment of partial aggregate states into chunk `v` of `target`
/// (a view or join-result array whose attributes are aggregate state slots),
/// cell by cell with the layout's state-merge semantics — addition for
/// COUNT/SUM/AVG, min/max for MIN/MAX. Creates the chunk on `fallback_node`
/// if it does not exist yet, and refreshes the catalog's size metadata.
///
/// This is the V + ∆V primitive: unlike a plain element-wise add it is
/// correct for every supported aggregate.
Status MergeStateFragment(DistributedArray* target, ChunkId v,
                          const Chunk& fragment, const AggregateLayout& layout,
                          NodeId fallback_node);

}  // namespace avm

