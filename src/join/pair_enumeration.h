#pragma once

#include <functional>
#include <vector>

#include "array/chunk_grid.h"
#include "array/coords.h"
#include "join/mapping.h"
#include "shape/chunk_footprint.h"
#include "shape/shape.h"

namespace avm {

/// Enumerates the right-operand chunk ids that may hold join partners for
/// cells of left chunk `p` under `mapping` and `shape`: the chunks of
/// `right_grid` overlapping the shape's bounding box applied around the image
/// of p's extent, filtered by `right_chunk_exists` (non-empty chunks only).
///
/// This is pure metadata — the preprocessing step the paper performs over the
/// catalog to identify the chunks involved in maintenance. It is a tight
/// superset: a returned chunk may hold no actual partner cell (bounding-box
/// approximation of the shape), but no partner chunk is ever missed.
///
/// Ids are returned in ascending order.
std::vector<ChunkId> EnumerateJoinPartners(
    const ChunkGrid& left_grid, ChunkId p, const DimMapping& mapping,
    const Shape& shape, const ChunkGrid& right_grid,
    const std::function<bool(ChunkId)>& right_chunk_exists);

/// Exact variant for identity mappings over identically chunked grids: the
/// partner chunks are p's grid position plus each delta of the shape's
/// precomputed chunk footprint. Unlike the bounding-box variant this prunes
/// chunk pairs a non-convex shape (an L1 diamond, a ∆ shape) can never
/// join, which is what makes the Section-5 differential-query cost scale
/// with |∆| instead of |∆'s bounding box|.
std::vector<ChunkId> EnumerateJoinPartnersExact(
    const ChunkGrid& grid, ChunkId p, const ChunkFootprint& footprint,
    const std::function<bool(ChunkId)>& right_chunk_exists);

/// The view chunks whose cells may be affected by contributions grouped from
/// left chunk `p`'s cells: the chunks of `view_grid` overlapping the
/// projection of p's extent onto `group_dims` (indices into the left
/// operand's dimensions). Used for triple generation.
std::vector<ChunkId> EnumerateViewTargets(const ChunkGrid& left_grid,
                                          ChunkId p,
                                          const std::vector<size_t>& group_dims,
                                          const ChunkGrid& view_grid);

}  // namespace avm

