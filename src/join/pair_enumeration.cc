#include "join/pair_enumeration.h"

#include <algorithm>

#include "common/check.h"

namespace avm {

std::vector<ChunkId> EnumerateJoinPartners(
    const ChunkGrid& left_grid, ChunkId p, const DimMapping& mapping,
    const Shape& shape, const ChunkGrid& right_grid,
    const std::function<bool(ChunkId)>& right_chunk_exists) {
  std::vector<ChunkId> partners;
  if (shape.empty()) return partners;
  const Box left_box = left_grid.ChunkBoxOfId(p);
  const Box image = mapping.ApplyBox(left_box);
  const Box shape_box = shape.BoundingBox();
  AVM_CHECK_EQ(image.lo.size(), shape_box.lo.size());
  Box probe;
  probe.lo.resize(image.lo.size());
  probe.hi.resize(image.lo.size());
  for (size_t d = 0; d < image.lo.size(); ++d) {
    probe.lo[d] = image.lo[d] + shape_box.lo[d];
    probe.hi[d] = image.hi[d] + shape_box.hi[d];
  }
  right_grid.ForEachChunkOverlapping(probe, [&](ChunkId q) {
    if (right_chunk_exists(q)) partners.push_back(q);
  });
  std::sort(partners.begin(), partners.end());
  return partners;
}

std::vector<ChunkId> EnumerateJoinPartnersExact(
    const ChunkGrid& grid, ChunkId p, const ChunkFootprint& footprint,
    const std::function<bool(ChunkId)>& right_chunk_exists) {
  std::vector<ChunkId> partners;
  const ChunkPos pos = grid.PosOfId(p);
  ChunkPos candidate(pos.size());
  for (const auto& delta : footprint.deltas()) {
    bool inside = true;
    for (size_t d = 0; d < pos.size(); ++d) {
      candidate[d] = pos[d] + delta[d];
      if (candidate[d] < 0 || candidate[d] >= grid.ChunksInDim(d)) {
        inside = false;
        break;
      }
    }
    if (!inside) continue;
    const ChunkId q = grid.IdOfPos(candidate);
    if (right_chunk_exists(q)) partners.push_back(q);
  }
  std::sort(partners.begin(), partners.end());
  return partners;
}

std::vector<ChunkId> EnumerateViewTargets(const ChunkGrid& left_grid,
                                          ChunkId p,
                                          const std::vector<size_t>& group_dims,
                                          const ChunkGrid& view_grid) {
  const Box left_box = left_grid.ChunkBoxOfId(p);
  Box projected;
  projected.lo.resize(group_dims.size());
  projected.hi.resize(group_dims.size());
  for (size_t d = 0; d < group_dims.size(); ++d) {
    AVM_CHECK_LT(group_dims[d], left_box.lo.size());
    projected.lo[d] = left_box.lo[group_dims[d]];
    projected.hi[d] = left_box.hi[group_dims[d]];
  }
  std::vector<ChunkId> targets;
  view_grid.ForEachChunkOverlapping(projected, [&](ChunkId v) {
    targets.push_back(v);
  });
  std::sort(targets.begin(), targets.end());
  return targets;
}

}  // namespace avm
