#include "join/join_kernel.h"

#include <vector>

#include "array/chunk_pool.h"
#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Accumulates matched right cells into per-view-chunk fragments. The view
/// cell is a pure function of the left cell (its projection onto the group
/// dimensions), so the builder resolves the destination slot once per left
/// cell — and reuses it across left cells whose projections coincide — while
/// every match folds straight into the cached row. Slot creation stays lazy:
/// a left cell with no matches emits nothing, exactly like the per-pair
/// map/hash lookups this replaces.
class FragmentBuilder {
 public:
  FragmentBuilder(const AggregateLayout& layout, const ViewTarget& target,
                  std::map<ChunkId, Chunk>* out)
      : layout_(layout),
        target_(target),
        identity_(layout.num_state_slots()),
        view_coord_(target.group_dims->size()),
        out_(out) {
    layout_.InitState(identity_);
  }

  /// Keys the builder to `left_coord`'s view cell. Cheap when consecutive
  /// left cells share a projection (group-by drops the fast-varying dims).
  void BeginLeftCell(std::span<const int64_t> left_coord) {
    const std::vector<size_t>& group_dims = *target_.group_dims;
    bool same = have_key_;
    for (size_t d = 0; d < group_dims.size(); ++d) {
      const int64_t c = left_coord[group_dims[d]];
      if (c != view_coord_[d]) {
        same = false;
        view_coord_[d] = c;
      }
    }
    if (same) return;
    have_key_ = true;
    const ChunkGrid::CellSlot slot = target_.view_grid->SlotOfCell(view_coord_);
    view_chunk_ = slot.id;
    view_offset_ = slot.offset;
    located_ = false;
  }

  /// Folds one matched right cell into the current view cell's state.
  Status Fold(std::span<const double> right_values, int multiplicity) {
    if (!located_) {
      if (chunk_ == nullptr || chunk_id_ != view_chunk_) {
        auto it = out_->find(view_chunk_);
        if (it == out_->end()) {
          // Pooled acquire: steady-state batches build fragments into
          // buffers released by previous merges instead of fresh heap.
          it = out_
                   ->emplace(view_chunk_,
                             ChunkPool::Acquire(view_coord_.size(),
                                                layout_.num_state_slots()))
                   .first;
        }
        chunk_ = &it->second;
        chunk_id_ = view_chunk_;
      }
      row_ = chunk_->GetOrCreateRow(view_offset_, view_coord_, identity_);
      located_ = true;
    }
    return layout_.UpdateState(
        {chunk_->MutableValuesOfRow(row_), layout_.num_state_slots()},
        right_values, multiplicity);
  }

 private:
  const AggregateLayout& layout_;
  const ViewTarget& target_;
  std::vector<double> identity_;
  CellCoord view_coord_;
  std::map<ChunkId, Chunk>* out_;

  bool have_key_ = false;    // view_coord_/view_chunk_/view_offset_ valid
  bool located_ = false;     // row_ resolved for the current key
  ChunkId view_chunk_ = 0;
  uint64_t view_offset_ = 0;
  Chunk* chunk_ = nullptr;   // cached fragment (map nodes are stable)
  ChunkId chunk_id_ = 0;
  size_t row_ = 0;           // rows are stable: fragments only append
};

}  // namespace

Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const CompiledShape& compiled,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments) {
  AVM_CHECK(right.chunk != nullptr && right.grid != nullptr);
  AVM_CHECK(target.group_dims != nullptr && target.view_grid != nullptr);
  AVM_CHECK(out_fragments != nullptr);
  if (multiplicity != 1 && multiplicity != -1) {
    return Status::InvalidArgument("multiplicity must be +1 or -1");
  }
  if (compiled.shape().empty() || left.empty() || right.chunk->empty()) {
    return Status::OK();
  }

  FragmentBuilder builder(layout, target, out_fragments);
  const DimMapping& mapping = compiled.mapping();
  const Box right_box = right.grid->ChunkBoxOfId(right.chunk_id);
  const size_t nd = compiled.num_dims();
  const size_t num_attrs = right.chunk->num_attrs();
  CellCoord base(nd);  // image of the left cell in right space

  // Path accumulators, folded into the registry once per invocation so the
  // per-cell loops never touch telemetry state (only these locals).
  uint64_t interior_cells = 0;
  uint64_t boundary_cells = 0;
  uint64_t probes = 0;
  uint64_t scanned_cells = 0;
  const bool probe_strategy =
      ChooseJoinStrategy(compiled.num_offsets(), right.chunk->num_cells()) ==
      JoinStrategy::kProbeOffsets;

  if (probe_strategy) {
    const Box interior = compiled.InteriorBox(right_box);
    const std::vector<int64_t>& deltas = compiled.linear_deltas();
    const int64_t* components = compiled.offset_components();
    for (size_t row = 0; row < left.num_cells(); ++row) {
      const auto left_coord = left.CoordOfRow(row);
      mapping.ApplyInto(left_coord, &base);
      builder.BeginLeftCell(left_coord);
      bool is_interior = true;
      for (size_t d = 0; d < nd; ++d) {
        if (base[d] < interior.lo[d] || base[d] > interior.hi[d]) {
          is_interior = false;
          break;
        }
      }
      probes += deltas.size();
      if (is_interior) {
        ++interior_cells;
        // Fast path: every probe is base_offset + precomputed delta.
        const int64_t base_offset =
            static_cast<int64_t>(compiled.OffsetInChunk(base, right_box));
        for (const int64_t delta : deltas) {
          const double* values = right.chunk->GetCell(
              static_cast<uint64_t>(base_offset + delta));
          if (values == nullptr) continue;
          AVM_RETURN_IF_ERROR(
              builder.Fold({values, num_attrs}, multiplicity));
        }
      } else {
        ++boundary_cells;
        // Boundary path: per-dimension checks against the chunk box; probes
        // that stay inside linearize against the box origin directly.
        const std::vector<int64_t>& extents = right.grid->extents();
        const int64_t* offset = components;
        for (size_t k = 0; k < deltas.size(); ++k, offset += nd) {
          uint64_t probe_offset = 0;
          bool inside = true;
          for (size_t d = 0; d < nd; ++d) {
            const int64_t p = base[d] + offset[d];
            if (p < right_box.lo[d] || p > right_box.hi[d]) {
              inside = false;
              break;
            }
            probe_offset = probe_offset * static_cast<uint64_t>(extents[d]) +
                           static_cast<uint64_t>(p - right_box.lo[d]);
          }
          if (!inside) continue;
          const double* values = right.chunk->GetCell(probe_offset);
          if (values == nullptr) continue;
          AVM_RETURN_IF_ERROR(
              builder.Fold({values, num_attrs}, multiplicity));
        }
      }
    }
  } else {
    const Shape& shape = compiled.shape();
    CellCoord delta(nd);
    for (size_t row = 0; row < left.num_cells(); ++row) {
      const auto left_coord = left.CoordOfRow(row);
      mapping.ApplyInto(left_coord, &base);
      builder.BeginLeftCell(left_coord);
      scanned_cells += right.chunk->num_cells();
      for (size_t rrow = 0; rrow < right.chunk->num_cells(); ++rrow) {
        const auto right_coord = right.chunk->CoordOfRow(rrow);
        for (size_t d = 0; d < nd; ++d) {
          delta[d] = right_coord[d] - base[d];
        }
        if (!shape.Contains(delta)) continue;
        AVM_RETURN_IF_ERROR(
            builder.Fold(right.chunk->ValuesOfRow(rrow), multiplicity));
      }
    }
  }
  if (TelemetryEnabled()) {
    CountAdd(probe_strategy ? CounterId::kJoinProbePairs
                            : CounterId::kJoinScanPairs);
    CountAdd(CounterId::kJoinInteriorCells, interior_cells);
    CountAdd(CounterId::kJoinBoundaryCells, boundary_cells);
    CountAdd(CounterId::kJoinProbes, probes);
    CountAdd(CounterId::kJoinScannedCells, scanned_cells);
  }
  return Status::OK();
}

Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const DimMapping& mapping, const Shape& shape,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments) {
  AVM_CHECK(right.grid != nullptr);
  AVM_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledShape> compiled,
      CompiledShapeCache::Global().Get(shape, mapping, *right.grid));
  return JoinAggregateChunkPair(left, right, *compiled, layout, target,
                                multiplicity, out_fragments);
}

}  // namespace avm
