#include "join/join_kernel.h"

#include <vector>

#include "common/logging.h"

namespace avm {

namespace {

/// Folds one matched right cell into the aggregate state of the view cell
/// keyed by the left cell's projection.
class FragmentAccumulator {
 public:
  FragmentAccumulator(const AggregateLayout& layout, const ViewTarget& target,
                      std::map<ChunkId, Chunk>* out)
      : layout_(layout),
        target_(target),
        identity_(layout.num_state_slots()),
        out_(out) {
    layout_.InitState(identity_);
  }

  Status Add(std::span<const int64_t> left_coord,
             std::span<const double> right_values, int multiplicity) {
    const auto& group_dims = *target_.group_dims;
    view_coord_.resize(group_dims.size());
    for (size_t d = 0; d < group_dims.size(); ++d) {
      view_coord_[d] = left_coord[group_dims[d]];
    }
    const ChunkId v = target_.view_grid->IdOfCell(view_coord_);
    const uint64_t offset = target_.view_grid->InChunkOffset(view_coord_);
    auto it = out_->find(v);
    if (it == out_->end()) {
      it = out_
               ->emplace(v, Chunk(view_coord_.size(),
                                  layout_.num_state_slots()))
               .first;
    }
    Chunk& frag = it->second;
    double* state = frag.GetMutableCell(offset);
    if (state == nullptr) {
      frag.UpsertCell(offset, view_coord_, identity_);
      state = frag.GetMutableCell(offset);
    }
    return layout_.UpdateState({state, layout_.num_state_slots()},
                               right_values, multiplicity);
  }

 private:
  const AggregateLayout& layout_;
  const ViewTarget& target_;
  std::vector<double> identity_;
  CellCoord view_coord_;
  std::map<ChunkId, Chunk>* out_;
};

}  // namespace

Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const DimMapping& mapping, const Shape& shape,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments) {
  AVM_CHECK(right.chunk != nullptr && right.grid != nullptr);
  AVM_CHECK(target.group_dims != nullptr && target.view_grid != nullptr);
  AVM_CHECK(out_fragments != nullptr);
  if (multiplicity != 1 && multiplicity != -1) {
    return Status::InvalidArgument("multiplicity must be +1 or -1");
  }
  if (shape.empty() || left.empty() || right.chunk->empty()) {
    return Status::OK();
  }

  FragmentAccumulator acc(layout, target, out_fragments);
  const Box right_box = right.grid->ChunkBoxOfId(right.chunk_id);
  CellCoord base;  // image of the left cell in right space
  CellCoord probe(right_box.lo.size());

  // Strategy choice: probing |σ| offsets per left cell vs scanning the right
  // chunk's cells per left cell. Pick the smaller inner loop.
  const bool probe_offsets = shape.size() <= right.chunk->num_cells();

  if (probe_offsets) {
    for (size_t row = 0; row < left.num_cells(); ++row) {
      const auto left_coord = left.CoordOfRow(row);
      mapping.ApplyInto(left_coord, &base);
      for (const auto& offset : shape.offsets()) {
        bool inside = true;
        for (size_t d = 0; d < probe.size(); ++d) {
          probe[d] = base[d] + offset[d];
          if (probe[d] < right_box.lo[d] || probe[d] > right_box.hi[d]) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
        const double* values =
            right.chunk->GetCell(right.grid->InChunkOffset(probe));
        if (values == nullptr) continue;
        AVM_RETURN_IF_ERROR(
            acc.Add(left_coord, {values, right.chunk->num_attrs()},
                    multiplicity));
      }
    }
  } else {
    CellCoord delta(probe.size());
    for (size_t row = 0; row < left.num_cells(); ++row) {
      const auto left_coord = left.CoordOfRow(row);
      mapping.ApplyInto(left_coord, &base);
      for (size_t rrow = 0; rrow < right.chunk->num_cells(); ++rrow) {
        const auto right_coord = right.chunk->CoordOfRow(rrow);
        for (size_t d = 0; d < delta.size(); ++d) {
          delta[d] = right_coord[d] - base[d];
        }
        if (!shape.Contains(delta)) continue;
        AVM_RETURN_IF_ERROR(acc.Add(left_coord, right.chunk->ValuesOfRow(rrow),
                                    multiplicity));
      }
    }
  }
  return Status::OK();
}

}  // namespace avm
