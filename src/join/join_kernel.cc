#include "join/join_kernel.h"

#include <bit>
#include <vector>

#include "array/chunk_pool.h"
#include "common/check.h"
#include "telemetry/metrics.h"

namespace avm {

namespace {

/// Accumulates matched right cells into per-view-chunk fragments. The view
/// cell is a pure function of the left cell (its projection onto the group
/// dimensions), so the builder resolves the destination slot once per left
/// cell — and reuses it across left cells whose projections coincide — while
/// every match folds straight into the cached cell ref. Slot creation stays
/// lazy: a left cell with no matches emits nothing, exactly like the
/// per-pair map/hash lookups this replaces.
class FragmentBuilder {
 public:
  /// `reserve_hint` bounds the cells one fragment can receive from this
  /// pair (the kernel passes the left chunk's cell count: each left cell
  /// creates at most one view cell). Fresh fragments pre-size their row
  /// buffers and offset index to it, so per-pair accumulation grows and
  /// rehashes once instead of logarithmically many times.
  FragmentBuilder(const AggregateLayout& layout, const ViewTarget& target,
                  size_t reserve_hint, std::map<ChunkId, Chunk>* out)
      : layout_(layout),
        target_(target),
        reserve_hint_(reserve_hint),
        identity_(layout.num_state_slots()),
        view_coord_(target.group_dims->size()),
        out_(out) {
    layout_.InitState(identity_);
  }

  /// Keys the builder to `left_coord`'s view cell. Cheap when consecutive
  /// left cells share a projection (group-by drops the fast-varying dims).
  void BeginLeftCell(std::span<const int64_t> left_coord) {
    const std::vector<size_t>& group_dims = *target_.group_dims;
    bool same = have_key_;
    for (size_t d = 0; d < group_dims.size(); ++d) {
      const int64_t c = left_coord[group_dims[d]];
      if (c != view_coord_[d]) {
        same = false;
        view_coord_[d] = c;
      }
    }
    if (same) return;
    have_key_ = true;
    const ChunkGrid::CellSlot slot = target_.view_grid->SlotOfCell(view_coord_);
    view_chunk_ = slot.id;
    view_offset_ = slot.offset;
    located_ = false;
  }

  /// Aggregate state of the current view cell, creating it (identity-
  /// initialized) on first use. The pointer is valid until the next cell
  /// creation in the same fragment; the vectorized fast path calls this
  /// once per left cell and folds a whole probe neighborhood through it.
  double* Locate() {
    if (!located_) {
      if (chunk_ == nullptr || chunk_id_ != view_chunk_) {
        auto it = out_->find(view_chunk_);
        if (it == out_->end()) {
          // Pooled acquire: steady-state batches build fragments into
          // buffers released by previous merges instead of fresh heap.
          it = out_
                   ->emplace(view_chunk_,
                             ChunkPool::Acquire(view_coord_.size(),
                                                layout_.num_state_slots()))
                   .first;
          it->second.Reserve(reserve_hint_);
        }
        chunk_ = &it->second;
        chunk_id_ = view_chunk_;
      }
      ref_ = chunk_->GetOrCreateCell(view_offset_, view_coord_, identity_);
      located_ = true;
    }
    return chunk_->StateOfCellRef(ref_);
  }

  /// Folds one matched right cell into the current view cell's state.
  Status Fold(std::span<const double> right_values, int multiplicity) {
    return layout_.UpdateState({Locate(), layout_.num_state_slots()},
                               right_values, multiplicity);
  }

 private:
  const AggregateLayout& layout_;
  const ViewTarget& target_;
  size_t reserve_hint_ = 0;
  std::vector<double> identity_;
  CellCoord view_coord_;
  std::map<ChunkId, Chunk>* out_;

  bool have_key_ = false;    // view_coord_/view_chunk_/view_offset_ valid
  bool located_ = false;     // ref_ resolved for the current key
  ChunkId view_chunk_ = 0;
  uint64_t view_offset_ = 0;
  Chunk* chunk_ = nullptr;   // cached fragment (map nodes are stable)
  ChunkId chunk_id_ = 0;
  Chunk::CellRef ref_ = 0;   // stable under appends (see Chunk::CellRef)
};

/// The aggregate layout decomposed for the branch-free dense fold: a layout
/// is *linear* when every spec is COUNT/SUM/AVG, i.e. one fold is
/// `state[slot] += m` (count terms) or `state[slot] += m * value[attr]`
/// (sum terms). MIN/MAX are not linear (their fold branches on the value)
/// and take the bitmap-tested per-probe path instead.
struct LinearTerms {
  struct SumTerm {
    size_t slot = 0;
    size_t attr = 0;
  };
  std::vector<size_t> count_slots;
  std::vector<SumTerm> sum_terms;
  bool linear = false;
};

LinearTerms AnalyzeLayout(const AggregateLayout& layout) {
  LinearTerms terms;
  terms.linear = true;
  for (size_t i = 0; i < layout.num_specs(); ++i) {
    const AggregateSpec& spec = layout.specs()[i];
    const size_t s = layout.slot_of(i);
    switch (spec.fn) {
      case AggregateFunction::kCount:
        terms.count_slots.push_back(s);
        break;
      case AggregateFunction::kSum:
        terms.sum_terms.push_back({s, spec.attr_index});
        break;
      case AggregateFunction::kAvg:
        terms.sum_terms.push_back({s, spec.attr_index});
        terms.count_slots.push_back(s + 1);
        break;
      case AggregateFunction::kMin:
      case AggregateFunction::kMax:
        terms.linear = false;
        return terms;
    }
  }
  return terms;
}

/// Set bits of `bitmap` in the slot range [begin, begin + length). Whole
/// words reduce with hardware popcount; the word loop is associative integer
/// arithmetic, so vectorizing it cannot perturb any floating-point result.
inline uint64_t CountBitsInRange(const uint64_t* __restrict bitmap,
                                 uint64_t begin, uint64_t length) {
  const uint64_t end = begin + length;
  const uint64_t first_word = begin >> 6;
  const uint64_t end_word = (end + 63) >> 6;  // exclusive
  uint64_t n = 0;
#pragma omp simd reduction(+ : n)
  for (uint64_t w = first_word; w < end_word; ++w) {
    uint64_t word = bitmap[w];
    const uint64_t word_lo = w << 6;
    if (begin > word_lo) word &= ~uint64_t{0} << (begin - word_lo);
    if (end < word_lo + 64) word &= (uint64_t{1} << (end - word_lo)) - 1;
    n += static_cast<uint64_t>(std::popcount(word));
  }
  return n;
}

}  // namespace

Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const CompiledShape& compiled,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments) {
  AVM_CHECK(right.chunk != nullptr && right.grid != nullptr);
  AVM_CHECK(target.group_dims != nullptr && target.view_grid != nullptr);
  AVM_CHECK(out_fragments != nullptr);
  if (multiplicity != 1 && multiplicity != -1) {
    return Status::InvalidArgument("multiplicity must be +1 or -1");
  }
  if (compiled.shape().empty() || left.empty() || right.chunk->empty()) {
    return Status::OK();
  }

  FragmentBuilder builder(layout, target, left.num_cells(), out_fragments);
  const DimMapping& mapping = compiled.mapping();
  const Box right_box = right.grid->ChunkBoxOfId(right.chunk_id);
  const size_t nd = compiled.num_dims();
  const size_t num_attrs = right.chunk->num_attrs();
  CellCoord base(nd);  // image of the left cell in right space

  // Path accumulators, folded into the registry once per invocation so the
  // per-cell loops never touch telemetry state (only these locals).
  uint64_t interior_cells = 0;
  uint64_t boundary_cells = 0;
  uint64_t probes = 0;
  uint64_t scanned_cells = 0;
  const bool right_dense = right.chunk->rep() == ChunkRep::kDense;
  const bool probe_strategy =
      ChooseJoinStrategy(compiled.num_offsets(), right.chunk->num_cells(),
                         right.chunk->rep()) == JoinStrategy::kProbeOffsets;

  if (probe_strategy) {
    const Box interior = compiled.InteriorBox(right_box);
    const std::vector<int64_t>& deltas = compiled.linear_deltas();
    const int64_t* components = compiled.offset_components();
    // Dense interior fast path setup: with a linear layout every probe is a
    // blind multiply-accumulate over the contiguous lanes (vacant slots
    // carry zeroed lanes, and adding m*0.0 can never change an additive
    // state that started from +0.0 — a sum only lands on -0.0 when both
    // addends are -0.0, so states never become -0.0 and x + ±0.0 == x
    // bitwise). MIN/MAX layouts branch on the bitmap instead.
    const LinearTerms terms =
        right_dense ? AnalyzeLayout(layout) : LinearTerms{};
    DenseChunkView dv;
    if (right_dense) dv = right.chunk->dense_view();
    const std::vector<CompiledShape::DenseRun>& runs = compiled.dense_runs();
    const double m = static_cast<double>(multiplicity);
    // Scratch for the dense boundary path: the occupied probe offsets of
    // one left cell, in delta order. Hoisted so the per-cell loop never
    // allocates once the high-water capacity is reached.
    std::vector<uint64_t> matched;
    if (right_dense && terms.linear) matched.reserve(deltas.size());

    Status status = left.VisitCells([&](uint64_t, std::span<const int64_t>
                                                      left_coord,
                                        std::span<const double>) -> Status {
      mapping.ApplyInto(left_coord, &base);
      builder.BeginLeftCell(left_coord);
      bool is_interior = true;
      for (size_t d = 0; d < nd; ++d) {
        if (base[d] < interior.lo[d] || base[d] > interior.hi[d]) {
          is_interior = false;
          break;
        }
      }
      probes += deltas.size();
      if (is_interior) {
        ++interior_cells;
        // Fast path: every probe is base_offset + precomputed delta.
        const int64_t base_offset =
            static_cast<int64_t>(compiled.OffsetInChunk(base, right_box));
        if (right_dense && terms.linear) {
          // Vectorized interior: one masked popcount per delta run finds
          // the match count (and preserves create-on-first-match — a left
          // cell with zero matches emits nothing), then count terms fold
          // in closed form and sum terms stream over the lanes.
          uint64_t matches = 0;
          for (const CompiledShape::DenseRun& run : runs) {
            matches += CountBitsInRange(
                dv.bitmap, static_cast<uint64_t>(base_offset + run.start),
                static_cast<uint64_t>(run.length));
          }
          if (matches == 0) return Status::OK();
          double* __restrict state = builder.Locate();
          // COUNT-type slots: the reference folds `state += m` once per
          // match; states are integer-valued doubles, so the closed form
          // `state += m * matches` is exact and bit-identical (no
          // intermediate leaves [-2^53, 2^53]).
          for (const size_t slot : terms.count_slots) {
            state[slot] += m * static_cast<double>(matches);
          }
          // SUM-type slots: the reference folds `state += m * lane` per
          // match *in delta order*; floating-point addition does not
          // reassociate, so this chain must stay sequential — the win is
          // the hash-free unit-stride walk, not SIMD over the reduction.
          // Vacant slots contribute m * 0.0, which is bit-neutral (above).
          for (const LinearTerms::SumTerm& term : terms.sum_terms) {
            double acc = state[term.slot];
            for (const CompiledShape::DenseRun& run : runs) {
              const double* __restrict lane =
                  dv.lanes +
                  static_cast<uint64_t>(base_offset + run.start) * num_attrs +
                  term.attr;
              for (int64_t j = 0; j < run.length; ++j) {
                acc += m * lane[static_cast<uint64_t>(j) * num_attrs];
              }
            }
            state[term.slot] = acc;
          }
          return Status::OK();
        }
        if (right_dense) {
          // Dense interior, non-linear layout (MIN/MAX): bitmap-tested
          // per-probe folds in delta order — still hash-free.
          for (const int64_t delta : deltas) {
            const uint64_t off = static_cast<uint64_t>(base_offset + delta);
            if (((dv.bitmap[off >> 6] >> (off & 63)) & 1u) == 0) continue;
            AVM_RETURN_IF_ERROR(builder.Fold(
                {dv.lanes + off * num_attrs, num_attrs}, multiplicity));
          }
          return Status::OK();
        }
        for (const int64_t delta : deltas) {
          const double* values =
              right.chunk->GetCell(static_cast<uint64_t>(base_offset + delta));
          if (values == nullptr) continue;
          AVM_RETURN_IF_ERROR(builder.Fold({values, num_attrs}, multiplicity));
        }
        return Status::OK();
      }
      ++boundary_cells;
      // Boundary path: per-dimension checks against the chunk box; probes
      // that stay inside linearize against the box origin directly.
      // GetCell dispatches on the right chunk's representation.
      const std::vector<int64_t>& extents = right.grid->extents();
      const int64_t* offset = components;
      if (right_dense && terms.linear) {
        // Dense boundary, linear layout: collect the occupied in-box probe
        // offsets (bitmap-tested, in delta order), then fold them exactly
        // like the interior — count terms in closed form, sum terms as a
        // sequential chain over the same offsets in the same order, so the
        // result stays bit-identical to the per-probe reference folds.
        matched.clear();
        for (size_t k = 0; k < deltas.size(); ++k, offset += nd) {
          uint64_t probe_offset = 0;
          bool inside = true;
          for (size_t d = 0; d < nd; ++d) {
            const int64_t p = base[d] + offset[d];
            if (p < right_box.lo[d] || p > right_box.hi[d]) {
              inside = false;
              break;
            }
            probe_offset = probe_offset * static_cast<uint64_t>(extents[d]) +
                           static_cast<uint64_t>(p - right_box.lo[d]);
          }
          if (!inside) continue;
          if (((dv.bitmap[probe_offset >> 6] >> (probe_offset & 63)) & 1u) ==
              0) {
            continue;
          }
          matched.push_back(probe_offset);
        }
        if (matched.empty()) return Status::OK();
        double* __restrict state = builder.Locate();
        for (const size_t slot : terms.count_slots) {
          state[slot] += m * static_cast<double>(matched.size());
        }
        for (const LinearTerms::SumTerm& term : terms.sum_terms) {
          double acc = state[term.slot];
          for (const uint64_t probe_offset : matched) {
            acc += m * dv.lanes[probe_offset * num_attrs + term.attr];
          }
          state[term.slot] = acc;
        }
        return Status::OK();
      }
      for (size_t k = 0; k < deltas.size(); ++k, offset += nd) {
        uint64_t probe_offset = 0;
        bool inside = true;
        for (size_t d = 0; d < nd; ++d) {
          const int64_t p = base[d] + offset[d];
          if (p < right_box.lo[d] || p > right_box.hi[d]) {
            inside = false;
            break;
          }
          probe_offset = probe_offset * static_cast<uint64_t>(extents[d]) +
                         static_cast<uint64_t>(p - right_box.lo[d]);
        }
        if (!inside) continue;
        const double* values = right.chunk->GetCell(probe_offset);
        if (values == nullptr) continue;
        AVM_RETURN_IF_ERROR(builder.Fold({values, num_attrs}, multiplicity));
      }
      return Status::OK();
    });
    AVM_RETURN_IF_ERROR(status);
  } else {
    const Shape& shape = compiled.shape();
    CellCoord delta(nd);
    Status status = left.VisitCells([&](uint64_t, std::span<const int64_t>
                                                      left_coord,
                                        std::span<const double>) -> Status {
      mapping.ApplyInto(left_coord, &base);
      builder.BeginLeftCell(left_coord);
      scanned_cells += right.chunk->num_cells();
      return right.chunk->VisitCells(
          [&](uint64_t, std::span<const int64_t> right_coord,
              std::span<const double> right_values) -> Status {
            for (size_t d = 0; d < nd; ++d) {
              delta[d] = right_coord[d] - base[d];
            }
            if (!shape.Contains(delta)) return Status::OK();
            return builder.Fold(right_values, multiplicity);
          });
    });
    AVM_RETURN_IF_ERROR(status);
  }
  if (TelemetryEnabled()) {
    CountAdd(probe_strategy ? CounterId::kJoinProbePairs
                            : CounterId::kJoinScanPairs);
    CountAdd(CounterId::kJoinInteriorCells, interior_cells);
    CountAdd(CounterId::kJoinBoundaryCells, boundary_cells);
    CountAdd(CounterId::kJoinProbes, probes);
    CountAdd(CounterId::kJoinScannedCells, scanned_cells);
  }
  return Status::OK();
}

Status JoinAggregateChunkPair(const Chunk& left, const RightOperand& right,
                              const DimMapping& mapping, const Shape& shape,
                              const AggregateLayout& layout,
                              const ViewTarget& target, int multiplicity,
                              std::map<ChunkId, Chunk>* out_fragments) {
  AVM_CHECK(right.grid != nullptr);
  AVM_ASSIGN_OR_RETURN(
      std::shared_ptr<const CompiledShape> compiled,
      CompiledShapeCache::Global().Get(shape, mapping, *right.grid));
  return JoinAggregateChunkPair(left, right, *compiled, layout, target,
                                multiplicity, out_fragments);
}

}  // namespace avm
