#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "array/chunk_grid.h"
#include "array/coords.h"
#include "common/mutex.h"
#include "common/result.h"
#include "join/mapping.h"
#include "shape/shape.h"

namespace avm {

/// A shape σ pre-linearized against one chunk-grid geometry, so the join
/// kernel can resolve most probes with a single integer add instead of a
/// per-dimension loop.
///
/// For every offset o ∈ σ the compiler precomputes its row-major in-chunk
/// offset delta Σ_d o[d]·stride[d] (strides taken from the grid's chunk
/// extents). For a left cell whose mapped image `base` lies in the right
/// chunk's *interior* — at least the shape's bounding box away from every
/// chunk face — every probe base+o lands in the same chunk, so its in-chunk
/// offset is exactly `offset(base) + delta`: no per-dimension bounds check,
/// no ChunkGrid::InChunkOffset call, just an add and an index probe. Cells
/// outside the interior window (chunk faces, edges, corners, and left cells
/// mapped near or beyond the right chunk) take the per-dimension boundary
/// path, which still skips the modulo arithmetic by subtracting the chunk
/// box origin directly.
///
/// Compilation depends only on (shape, mapping, grid geometry), so one
/// CompiledShape serves every chunk pair of a maintenance plan; see
/// CompiledShapeCache below for the per-plan memoization.
class CompiledShape {
 public:
  /// Compiles `shape` (applied in right-operand space after `mapping`)
  /// against `right_grid`'s chunking. Fails if dimensionalities disagree.
  static Result<CompiledShape> Create(const Shape& shape,
                                      const DimMapping& mapping,
                                      const ChunkGrid& right_grid);

  const Shape& shape() const { return shape_; }
  const DimMapping& mapping() const { return mapping_; }
  size_t num_dims() const { return extents_.size(); }
  size_t num_offsets() const { return linear_deltas_.size(); }

  /// Per-offset in-chunk offset deltas, in the shape's deterministic
  /// (lexicographic) offset order.
  const std::vector<int64_t>& linear_deltas() const { return linear_deltas_; }

  /// Flat |σ| × num_dims row-major copy of the offset components, laid out
  /// contiguously for the boundary path.
  const int64_t* offset_components() const { return components_.data(); }

  /// One maximal run of consecutive in-chunk offset deltas. Shape offsets
  /// are lex-ordered with the last dimension fastest, so offsets adjacent
  /// along that dimension linearize to consecutive deltas; a solid shape
  /// (e.g. a Chebyshev ball) of k^d offsets collapses to k^(d-1) runs.
  struct DenseRun {
    int64_t start = 0;   // linear delta of the run's first offset
    int64_t length = 0;  // number of consecutive offsets in the run
  };

  /// The linear deltas coalesced into maximal consecutive runs, in delta
  /// order (concatenating the runs reproduces linear_deltas() exactly, so a
  /// kernel walking runs folds matches in the same deterministic order as
  /// one walking per-offset deltas). The dense interior fast path turns
  /// each run into one contiguous bitmap/lane segment: a masked popcount
  /// and a unit-stride lane walk instead of per-offset hash probes.
  const std::vector<DenseRun>& dense_runs() const { return dense_runs_; }

  /// The per-dim window of base coordinates whose whole probe neighborhood
  /// stays inside `right_chunk_box`: [box.lo - bbox.lo, box.hi - bbox.hi].
  /// May be empty (lo > hi) when the shape spans more than a chunk.
  Box InteriorBox(const Box& right_chunk_box) const;

  /// In-chunk offset of `coord`, known to lie inside the chunk covering
  /// `right_chunk_box`. Equivalent to ChunkGrid::InChunkOffset but without
  /// the per-dimension modulo (the box origin is the chunk origin).
  uint64_t OffsetInChunk(const CellCoord& coord,
                         const Box& right_chunk_box) const {
    uint64_t off = 0;
    for (size_t d = 0; d < extents_.size(); ++d) {
      off = off * static_cast<uint64_t>(extents_[d]) +
            static_cast<uint64_t>(coord[d] - right_chunk_box.lo[d]);
    }
    return off;
  }

 private:
  CompiledShape(Shape shape, DimMapping mapping, std::vector<int64_t> extents,
                std::vector<int64_t> deltas, std::vector<int64_t> components,
                std::vector<DenseRun> dense_runs, Box bounding_box)
      : shape_(std::move(shape)),
        mapping_(std::move(mapping)),
        extents_(std::move(extents)),
        linear_deltas_(std::move(deltas)),
        components_(std::move(components)),
        dense_runs_(std::move(dense_runs)),
        bounding_box_(std::move(bounding_box)) {}

  Shape shape_;
  DimMapping mapping_;
  std::vector<int64_t> extents_;        // right grid chunk extents
  std::vector<int64_t> linear_deltas_;  // per offset, row-major delta
  std::vector<int64_t> components_;     // |σ| x num_dims offsets, flat
  std::vector<DenseRun> dense_runs_;    // deltas coalesced into runs
  Box bounding_box_;                    // shape bbox (degenerate if empty)
};

/// Process-wide memoization of CompiledShape keyed by the *content* of
/// (shape, mapping, grid geometry): a maintenance plan with hundreds of
/// chunk-joins — or delta and base arrays chunked identically — compiles the
/// shape exactly once. Get() is thread-safe; hot loops that must not touch
/// the lock should fetch once up front and pass the CompiledShape down.
class CompiledShapeCache {
 public:
  static CompiledShapeCache& Global();

  /// Returns the memoized compilation, compiling on first use.
  Result<std::shared_ptr<const CompiledShape>> Get(const Shape& shape,
                                                   const DimMapping& mapping,
                                                   const ChunkGrid& grid);

  /// Entries currently memoized (test hook).
  size_t size() const;

  /// Lifetime hit/miss totals of Get(). Always maintained (they live under
  /// the cache lock anyway); also mirrored into the telemetry registry as
  /// CounterId::kShapeCacheHits / kShapeCacheMisses when enabled.
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<int64_t>& key) const {
      return static_cast<size_t>(HashInts(key));
    }
  };

  // Bounds the cache for long-lived processes cycling through many ad-hoc
  // shapes; real workloads hold a handful of entries.
  static constexpr size_t kMaxEntries = 256;

  mutable Mutex mu_{"CompiledShapeCache.mu", LockRank::kShapeCache};
  std::unordered_map<std::vector<int64_t>,
                     std::shared_ptr<const CompiledShape>, KeyHash>
      cache_ AVM_GUARDED_BY(mu_);
  uint64_t hits_ AVM_GUARDED_BY(mu_) = 0;
  uint64_t misses_ AVM_GUARDED_BY(mu_) = 0;
};

}  // namespace avm

