#pragma once

#include "array/sparse_array.h"
#include "common/result.h"
#include "join/similarity_join.h"

namespace avm {

/// Single-node reference evaluation of the similarity-join aggregate: the
/// straightforward cell-at-a-time computation of
///     SELECT aggs FROM left SIMILARITY JOIN right ON M WITH SHAPE σ
///     GROUP BY group_dims of left,
/// with no chunking, distribution, or incremental machinery involved.
///
/// Every distributed/incremental code path in the library is validated
/// against this oracle in the test suite: maintenance after N batches must
/// equal the reference over the final data, and differential queries must
/// equal the reference under the query shape.
///
/// `result_schema` must carry the grouped dimensions of `left` and the
/// layout's state attributes; the returned array holds aggregate states
/// (finalize with AggregateLayout::Finalize when reading values).
Result<SparseArray> ReferenceJoinAggregate(const SparseArray& left,
                                           const SparseArray& right,
                                           const SimilarityJoinSpec& spec,
                                           const ArraySchema& result_schema);

}  // namespace avm

