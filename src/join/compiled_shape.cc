#include "join/compiled_shape.h"

#include <utility>

#include "telemetry/metrics.h"

namespace avm {

Result<CompiledShape> CompiledShape::Create(const Shape& shape,
                                            const DimMapping& mapping,
                                            const ChunkGrid& right_grid) {
  const size_t nd = right_grid.num_dims();
  if (shape.num_dims() != nd) {
    return Status::InvalidArgument(
        "shape dimensionality does not match the right grid");
  }
  if (mapping.num_right_dims() != nd) {
    return Status::InvalidArgument(
        "mapping output dimensionality does not match the right grid");
  }
  const std::vector<int64_t>& extents = right_grid.extents();

  // Row-major strides over the chunk extents: stride[last] = 1,
  // stride[d] = stride[d+1] * extent[d+1] — the linearization InChunkOffset
  // applies one dimension at a time.
  std::vector<int64_t> strides(nd, 1);
  for (size_t d = nd; d-- > 1;) {
    strides[d - 1] = strides[d] * extents[d];
  }

  std::vector<int64_t> deltas;
  std::vector<int64_t> components;
  deltas.reserve(shape.size());
  components.reserve(shape.size() * nd);
  for (const CellCoord& offset : shape.offsets()) {
    int64_t delta = 0;
    for (size_t d = 0; d < nd; ++d) {
      delta += offset[d] * strides[d];
      components.push_back(offset[d]);
    }
    deltas.push_back(delta);
  }

  // Coalesce consecutive deltas into maximal runs, preserving delta order
  // (the concatenation of the runs is exactly `deltas`, so the dense kernel
  // folds matches in the same order as the per-offset path).
  std::vector<DenseRun> runs;
  for (const int64_t delta : deltas) {
    if (!runs.empty() &&
        runs.back().start + runs.back().length == delta) {
      ++runs.back().length;
    } else {
      runs.push_back(DenseRun{delta, 1});
    }
  }

  return CompiledShape(shape, mapping, extents, std::move(deltas),
                       std::move(components), std::move(runs),
                       shape.BoundingBox());
}

Box CompiledShape::InteriorBox(const Box& right_chunk_box) const {
  Box interior;
  const size_t nd = extents_.size();
  interior.lo.resize(nd);
  interior.hi.resize(nd);
  for (size_t d = 0; d < nd; ++d) {
    interior.lo[d] = right_chunk_box.lo[d] - bounding_box_.lo[d];
    interior.hi[d] = right_chunk_box.hi[d] - bounding_box_.hi[d];
  }
  return interior;
}

CompiledShapeCache& CompiledShapeCache::Global() {
  static CompiledShapeCache* cache = new CompiledShapeCache();
  return *cache;
}

Result<std::shared_ptr<const CompiledShape>> CompiledShapeCache::Get(
    const Shape& shape, const DimMapping& mapping, const ChunkGrid& grid) {
  // Content key: grid geometry, mapping terms, then every shape offset. Two
  // grids chunking the same space identically (a base array and its deltas)
  // share an entry even though they are distinct ChunkGrid objects.
  std::vector<int64_t> key;
  const size_t nd = grid.num_dims();
  key.reserve(3 + nd + 2 * mapping.num_right_dims() +
              shape.size() * shape.num_dims());
  key.push_back(static_cast<int64_t>(nd));
  key.insert(key.end(), grid.extents().begin(), grid.extents().end());
  key.push_back(static_cast<int64_t>(mapping.num_left_dims()));
  for (const DimMapping::Term& term : mapping.terms()) {
    key.push_back(static_cast<int64_t>(term.source_dim));
    key.push_back(term.offset);
  }
  key.push_back(static_cast<int64_t>(shape.num_dims()));
  for (const CellCoord& offset : shape.offsets()) {
    key.insert(key.end(), offset.begin(), offset.end());
  }

  MutexLock lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    CountAdd(CounterId::kShapeCacheHits);
    return it->second;
  }
  ++misses_;
  CountAdd(CounterId::kShapeCacheMisses);
  AVM_ASSIGN_OR_RETURN(CompiledShape compiled,
                       CompiledShape::Create(shape, mapping, grid));
  if (cache_.size() >= kMaxEntries) cache_.clear();
  auto shared = std::make_shared<const CompiledShape>(std::move(compiled));
  cache_.emplace(std::move(key), shared);
  return shared;
}

size_t CompiledShapeCache::size() const {
  MutexLock lock(mu_);
  return cache_.size();
}

uint64_t CompiledShapeCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t CompiledShapeCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace avm
