#include "join/mapping.h"

#include <algorithm>

#include "common/check.h"

namespace avm {

DimMapping DimMapping::Identity(size_t num_dims) {
  std::vector<Term> terms(num_dims);
  for (size_t d = 0; d < num_dims; ++d) terms[d] = Term{d, 0};
  return DimMapping(num_dims, std::move(terms));
}

Result<DimMapping> DimMapping::Create(size_t num_left_dims,
                                      std::vector<Term> terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("mapping needs at least one output dim");
  }
  for (const auto& t : terms) {
    if (t.source_dim >= num_left_dims) {
      return Status::InvalidArgument(
          "mapping term references source dim " +
          std::to_string(t.source_dim) + " but the left operand has " +
          std::to_string(num_left_dims) + " dims");
    }
  }
  return DimMapping(num_left_dims, std::move(terms));
}

bool DimMapping::IsIdentity() const {
  if (terms_.size() != num_left_dims_) return false;
  for (size_t d = 0; d < terms_.size(); ++d) {
    if (terms_[d].source_dim != d || terms_[d].offset != 0) return false;
  }
  return true;
}

CellCoord DimMapping::Apply(const CellCoord& left) const {
  AVM_CHECK_EQ(left.size(), num_left_dims_);
  CellCoord right(terms_.size());
  for (size_t d = 0; d < terms_.size(); ++d) {
    right[d] = left[terms_[d].source_dim] + terms_[d].offset;
  }
  return right;
}

void DimMapping::ApplyInto(std::span<const int64_t> left,
                           CellCoord* right) const {
  AVM_CHECK_EQ(left.size(), num_left_dims_);
  right->resize(terms_.size());
  for (size_t d = 0; d < terms_.size(); ++d) {
    (*right)[d] = left[terms_[d].source_dim] + terms_[d].offset;
  }
}

Box DimMapping::ApplyBox(const Box& left) const {
  AVM_CHECK_EQ(left.lo.size(), num_left_dims_);
  Box right;
  right.lo.resize(terms_.size());
  right.hi.resize(terms_.size());
  for (size_t d = 0; d < terms_.size(); ++d) {
    right.lo[d] = left.lo[terms_[d].source_dim] + terms_[d].offset;
    right.hi[d] = left.hi[terms_[d].source_dim] + terms_[d].offset;
  }
  return right;
}

Box DimMapping::PreimageBox(const Box& right_box,
                            const Box& left_domain) const {
  AVM_CHECK_EQ(right_box.lo.size(), terms_.size());
  AVM_CHECK_EQ(left_domain.lo.size(), num_left_dims_);
  Box left = left_domain;
  for (size_t d = 0; d < terms_.size(); ++d) {
    const size_t s = terms_[d].source_dim;
    left.lo[s] = std::max(left.lo[s], right_box.lo[d] - terms_[d].offset);
    left.hi[s] = std::min(left.hi[s], right_box.hi[d] - terms_[d].offset);
  }
  return left;
}

}  // namespace avm
