#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace avm {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  AVM_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AVM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace avm
