#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/status.h"

/// Contract-checking macros for the whole project. Three tiers:
///
///   AVM_CHECK(cond)    — always on, in every build type. For invariants
///                        whose violation means memory is already suspect or
///                        results would be silently wrong (index corruption,
///                        impossible enum values). Cost must be O(1) and off
///                        the innermost kernel loops.
///   AVM_DCHECK(cond)   — Debug/test builds only; compiles out entirely when
///                        NDEBUG is defined (the condition is parsed but
///                        never evaluated, so Release kernels pay nothing).
///                        For per-element and per-iteration contracts.
///   AVM_CHECK_OK(expr) — checks a Status (or Result<T>) expression is OK;
///                        AVM_DCHECK_OK is its compiled-out sibling.
///
/// All macros stream context: AVM_CHECK(n > 0) << "need n, got " << n;
/// Comparison forms (AVM_CHECK_EQ/NE/LT/LE/GT/GE and AVM_DCHECK_*) print
/// both operands. Operands may be re-evaluated once more on the failure
/// path, so they must be side-effect free.
///
/// Failure is routed through a process-wide pluggable handler: binaries keep
/// the default handler (log the message with file:line, then abort), while
/// tests install a throwing handler (ScopedThrowingCheckHandler) so death
/// paths — deliberately corrupted chunks, malformed maintenance plans — are
/// unit-testable without death tests.

namespace avm {

/// Thrown by the throwing failure handler that tests install via
/// ScopedThrowingCheckHandler. what() is "file:line message".
class CheckFailedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A check-failure sink. Handlers should not return; one that does is
/// followed by std::abort() (the contract is already violated, continuing
/// would compute garbage).
using CheckFailureHandler = void (*)(const char* file, int line,
                                     const std::string& message);

/// Installs `handler` process-wide and returns the previous one. Passing
/// nullptr restores the default aborting handler. Thread-safe; intended for
/// test fixtures, not for per-call-site customization.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// The default handler: logs "Check failed ..." at Fatal severity (which
/// aborts). Exposed so tests can assert handler round-tripping.
[[noreturn]] void AbortingCheckFailureHandler(const char* file, int line,
                                              const std::string& message);

/// Throws CheckFailedError instead of aborting. Never install this in a
/// binary: check failures on thread-pool workers would escape the task and
/// terminate; in tests the executor's validators run on the control thread.
[[noreturn]] void ThrowingCheckFailureHandler(const char* file, int line,
                                              const std::string& message);

/// RAII guard that makes check failures throw CheckFailedError for its
/// scope, restoring the previous handler on destruction.
class ScopedThrowingCheckHandler {
 public:
  ScopedThrowingCheckHandler()
      : previous_(SetCheckFailureHandler(ThrowingCheckFailureHandler)) {}
  ~ScopedThrowingCheckHandler() { SetCheckFailureHandler(previous_); }

  ScopedThrowingCheckHandler(const ScopedThrowingCheckHandler&) = delete;
  ScopedThrowingCheckHandler& operator=(const ScopedThrowingCheckHandler&) =
      delete;

 private:
  CheckFailureHandler previous_;
};

/// True when AVM_DCHECK and the debug structural validators are active in
/// this build (NDEBUG undefined). Lets call sites gate whole validation
/// passes — `if constexpr (kDebugChecksEnabled)` — so Release binaries skip
/// even the loop around the checks.
#ifndef NDEBUG
inline constexpr bool kDebugChecksEnabled = true;
#else
inline constexpr bool kDebugChecksEnabled = false;
#endif

namespace internal_check {

/// Streamed message collector for a failed check. Fires the installed
/// failure handler from its destructor (end of the check's full
/// expression); the destructor is noexcept(false) because the test handler
/// throws.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* prefix)
      : file_(file), line_(line) {
    stream_ << prefix;
  }
  ~CheckFailure() noexcept(false);

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Converts a streamed CheckFailure expression to void so it can sit on the
/// false branch of a ternary (`&` binds looser than `<<` but tighter than
/// `?:`).
struct Voidify {
  /// Const ref so both a bare CheckFailure temporary and a streamed chain
  /// (whose operator<< returns an lvalue reference) bind.
  void operator&(const CheckFailure&) {}
};

/// Normalizes the operand of AVM_CHECK_OK to a Status by value (a reference
/// into a temporary Result would dangle past the init-statement).
inline Status AsStatus(const Status& s) { return s; }
template <typename ResultLike>
Status AsStatus(const ResultLike& r) {
  return r.status();
}

}  // namespace internal_check
}  // namespace avm

#define AVM_CHECK_FAIL_STREAM_(prefix)        \
  ::avm::internal_check::Voidify() &          \
      ::avm::internal_check::CheckFailure(__FILE__, __LINE__, prefix)

/// Always-on invariant check; streams extra context on the right.
#define AVM_CHECK(cond) \
  (cond) ? (void)0 : AVM_CHECK_FAIL_STREAM_("Check failed: " #cond " ")

#define AVM_CHECK_EQ(a, b) \
  AVM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_CHECK_NE(a, b) \
  AVM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_CHECK_LT(a, b) \
  AVM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_CHECK_LE(a, b) \
  AVM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_CHECK_GT(a, b) \
  AVM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_CHECK_GE(a, b) \
  AVM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Always-on check that a Status (or Result<T>) expression is OK. The
/// expression is evaluated exactly once. The switch wrapper scopes the
/// evaluated status, avoids dangling-else, and keeps the macro a single
/// statement that accepts streamed context.
#define AVM_CHECK_OK(expr)                                            \
  switch (const ::avm::Status _avm_check_ok_status =                  \
              ::avm::internal_check::AsStatus((expr));                \
          0)                                                          \
  case 0:                                                             \
  default:                                                            \
    if (_avm_check_ok_status.ok()) {                                  \
    } else                                                            \
      AVM_CHECK_FAIL_STREAM_("Check failed: " #expr " is OK ")        \
          << "(status = " << _avm_check_ok_status.ToString() << ") "

/// Debug-only tier. With NDEBUG the `while (false)` guard makes the whole
/// statement dead: operands still type-check (no #ifdef rot) but are never
/// evaluated, and every optimizing build folds the statement away — the
/// property the Release bench gate relies on.
#ifndef NDEBUG
#define AVM_DCHECK(cond) AVM_CHECK(cond)
#define AVM_DCHECK_OK(expr) AVM_CHECK_OK(expr)
#else
#define AVM_DCHECK(cond) \
  while (false) AVM_CHECK(cond)
#define AVM_DCHECK_OK(expr) \
  while (false) AVM_CHECK_OK(expr)
#endif

#define AVM_DCHECK_EQ(a, b) \
  AVM_DCHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_DCHECK_NE(a, b) \
  AVM_DCHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_DCHECK_LT(a, b) \
  AVM_DCHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_DCHECK_LE(a, b) \
  AVM_DCHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_DCHECK_GT(a, b) \
  AVM_DCHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define AVM_DCHECK_GE(a, b) \
  AVM_DCHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
