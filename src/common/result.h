#pragma once

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace avm {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced. The moral equivalent of `absl::StatusOr<T>` /
/// `arrow::Result<T>`.
///
/// Accessing `value()` on an errored result is a programming error and
/// trips an AVM_DCHECK in debug builds; check `ok()` first or use
/// `AVM_ASSIGN_OR_RETURN`.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// silently swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit construction from an error status: `return Status::NotFound(..)`.
  Result(Status status) : status_(std::move(status)) {
    AVM_DCHECK(!status_.ok()) << "Result(Status) requires a non-OK status";
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// OK when a value is present, the stored error otherwise.
  const Status& status() const { return status_; }

  const T& value() const& {
    AVM_DCHECK(ok()) << "value() on an errored Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    AVM_DCHECK(ok()) << "value() on an errored Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    AVM_DCHECK(ok()) << "value() on an errored Result: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace avm

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise move-assigns the value into `lhs`.
/// `lhs` may include a declaration: AVM_ASSIGN_OR_RETURN(auto x, Foo());
#define AVM_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  AVM_ASSIGN_OR_RETURN_IMPL_(                              \
      AVM_RESULT_CONCAT_(_avm_result, __LINE__), lhs, rexpr)

#define AVM_RESULT_CONCAT_INNER_(a, b) a##b
#define AVM_RESULT_CONCAT_(a, b) AVM_RESULT_CONCAT_INNER_(a, b)

#define AVM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

