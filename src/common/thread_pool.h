#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace avm {

/// A fixed-size pool of worker threads executing submitted tasks FIFO.
///
/// The pool is the execution substrate of the parallel maintenance executor:
/// per-simulated-node work (chunk joins, delta upserts) is packaged into
/// tasks that run concurrently on real host threads, while simulated clocks
/// keep measuring the cost model's time. A pool of size 1 degenerates to
/// serial execution on the caller's thread (no worker is spawned), which
/// keeps the single-threaded path free of synchronization and trivially
/// deterministic.
///
/// Tasks must not throw — the codebase is Status-based; a task that needs to
/// report failure stores a Status into state it owns (see ParallelFor usage
/// in maintenance/executor.cc).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (clamped to >= 1). One thread
  /// means inline execution: Submit runs the task immediately on the calling
  /// thread and no worker threads exist.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues `task` for execution (runs it inline for a 1-thread pool).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(0), ..., fn(n-1), distributing indices across the pool's
  /// workers (plus the calling thread, which also drains indices instead of
  /// blocking idle), and returns when all n calls completed. Indices are
  /// claimed dynamically, so per-index work may be uneven. fn must be safe to
  /// call concurrently from multiple threads with distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  const int num_threads_;
  /// Written only by the constructor and joined by the destructor; workers
  /// never touch it, so it needs no lock.
  std::vector<std::thread> workers_;  // avm-lint: allow(unguarded-mutex-member)

  Mutex mu_{"ThreadPool.mu", LockRank::kThreadPool};
  CondVar task_ready_;  // signalled when queue_ grows/stops
  CondVar all_idle_;    // signalled when pending_ hits zero
  std::deque<std::function<void()>> queue_ AVM_GUARDED_BY(mu_);
  size_t pending_ AVM_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ AVM_GUARDED_BY(mu_) = false;
};

}  // namespace avm

