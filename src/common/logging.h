#pragma once

#include <sstream>

namespace avm {

/// Severity levels for the library logger. kFatal aborts the process after
/// emitting the message.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped (kFatal is never
/// dropped). Defaults to kInfo. Not thread-synchronized by design: set it
/// once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style message collector used by the AVM_LOG macro. Emits to stderr
/// on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Converts a streamed LogMessage expression to void so it can sit on the
/// false branch of a ternary (the standard glog trick: `&` binds looser than
/// `<<` but tighter than `?:`).
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace avm

#define AVM_LOG(level)                                                      \
  ::avm::internal_logging::LogMessage(::avm::LogLevel::k##level, __FILE__, \
                                      __LINE__)

/// The CHECK-style contract macros (AVM_CHECK, AVM_DCHECK, AVM_CHECK_OK,
/// comparison forms) live in common/check.h.

