#include "common/check.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"

namespace avm {

namespace {

std::atomic<CheckFailureHandler> g_handler{&AbortingCheckFailureHandler};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  if (handler == nullptr) handler = &AbortingCheckFailureHandler;
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void AbortingCheckFailureHandler(const char* file, int line,
                                 const std::string& message) {
  { internal_logging::LogMessage(LogLevel::kFatal, file, line) << message; }
  std::abort();  // unreachable: a Fatal LogMessage aborts on destruction
}

void ThrowingCheckFailureHandler(const char* file, int line,
                                 const std::string& message) {
  std::ostringstream what;
  what << file << ":" << line << " " << message;
  throw CheckFailedError(what.str());
}

namespace internal_check {

CheckFailure::~CheckFailure() noexcept(false) {
  CheckFailureHandler handler = g_handler.load(std::memory_order_acquire);
  handler(file_, line_, stream_.str());
  std::abort();  // contract: handlers do not return
}

}  // namespace internal_check
}  // namespace avm
