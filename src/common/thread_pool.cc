#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace avm {

namespace {

/// Runs one pool task, recording its latency and the run counter when
/// telemetry is on (one branch otherwise).
void RunTimed(const std::function<void()>& task) {
  if (!TelemetryEnabled()) {
    task();
    return;
  }
  const int64_t start_ns = TraceNowNs();
  task();
  HistogramRecord(HistogramId::kPoolTaskSeconds,
                  static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
  CountAdd(CounterId::kPoolTasksRun);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  // A 1-thread pool executes inline; only spawn workers beyond the caller.
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) task_ready_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    GaugeAdd(GaugeId::kPoolQueueDepth, -1);
    RunTimed(task);
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) all_idle_.NotifyAll();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTimed(task);
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  GaugeAdd(GaugeId::kPoolQueueDepth, 1);
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  while (pending_ != 0) all_idle_.Wait(mu_);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Per-call completion state, shared with the worker tasks. Indices are
  // claimed from an atomic counter so a slow index does not stall the rest.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mu{"ThreadPool.ParallelFor", LockRank::kLeaf};
    CondVar finished;
  };
  auto state = std::make_shared<ForState>();
  auto drain = [state, n, &fn] {
    size_t i;
    size_t completed = 0;
    while ((i = state->next.fetch_add(1)) < n) {
      fn(i);
      ++completed;
    }
    if (completed > 0 &&
        state->done.fetch_add(completed) + completed == n) {
      MutexLock lock(state->mu);
      state->finished.NotifyAll();
    }
  };
  const size_t helpers =
      std::min(n - 1, workers_.size());  // the caller drains too
  for (size_t i = 0; i < helpers; ++i) Submit(drain);
  drain();
  MutexLock lock(state->mu);
  while (state->done.load() != n) state->finished.Wait(state->mu);
}

}  // namespace avm
