#include "common/string_util.h"

#include <cstdio>

namespace avm {

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace avm
