#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

/// Annotated mutex wrappers: the only way code outside src/common/ may lock.
///
/// Why wrappers instead of raw std::mutex (enforced by the `raw-mutex` lint
/// rule): Clang Thread Safety Analysis only sees acquisitions that go
/// through types carrying capability annotations, and libstdc++'s std::mutex
/// carries none — a raw lock_guard is invisible to the analysis, so every
/// AVM_GUARDED_BY contract it was supposed to discharge silently stops being
/// checked. avm::Mutex/avm::MutexLock put the annotations on the one choke
/// point, and add two things std::mutex lacks:
///
///   - a name, so diagnostics (and the trace of a deadlock) say
///     "ChunkStore.mu", not an address;
///   - a LockRank, checked at runtime in Debug builds: acquiring a mutex
///     whose rank is not strictly greater than every lock the thread already
///     holds AVM_CHECK-fails with the full held-lock list. The static
///     analysis proves per-function lock protocols; the rank checker catches
///     cross-translation-unit acquisition *order* cycles TSA cannot see.
///     Release builds compile the tracking out entirely.
///
/// Condition variables go through avm::CondVar, whose Wait(mu) takes the
/// annotated mutex (AVM_REQUIRES) so waiting call sites stay visible to the
/// analysis. Write waits as explicit loops —
///     while (!ready_) cv_.Wait(mu_);
/// — not predicate lambdas: TSA analyzes a lambda body as a separate
/// function that cannot see the capability is held.

namespace avm {

class Mutex;

/// Acquisition-order ranks, lowest first: a thread may only acquire a mutex
/// whose rank is strictly greater than every lock it already holds. The
/// table mirrors the call graph (pool → store → epoch manager → telemetry);
/// DESIGN.md "Lock hierarchy & thread-safety annotations" documents each
/// edge. kLeaf is the default for locks that never nest inside anything
/// (test oracles, per-call wait states); two kLeaf locks can never be held
/// together, which is exactly the property a leaf lock promises.
enum class LockRank : int {
  kThreadPool = 10,      // ThreadPool::mu_ — task queue; tasks run unlocked
  kChunkPool = 20,       // ChunkPool global overflow free list
  kBufferManager = 25,   // BufferManager::mu_ — residency registry + clock hand
  kChunkStore = 30,      // ChunkStore::mu_ — one store's chunk map
  kSpillFile = 35,       // SpillFile::mu_ — spill I/O + free-extent allocator
  kEpochManager = 40,    // EpochManager::mu_ — current-epoch slot
  kEpochStats = 50,      // EpochManager stats block (nests inside mu_)
  kShapeCache = 60,      // CompiledShapeCache (telemetry nests inside it)
  kTraceCollector = 70,  // TraceCollector buffer registry
  kTraceBuffer = 80,     // per-thread trace ring (nests inside collector)
  kMetricsRegistry = 90, // metrics shard registry — the leaf-most named lock
  kLeaf = 100,           // default: must be the last lock acquired
};

namespace mutex_internal {

/// Debug-only acquisition-order bookkeeping (defined in mutex.cc; the
/// per-thread held-lock stack lives there). No-ops never emitted in Release:
/// callers compile the calls out under NDEBUG.
void CheckRankOnAcquire(const Mutex& acquiring);
void RecordAcquire(const Mutex& mu);
void RecordRelease(const Mutex& mu);

}  // namespace mutex_internal

/// A std::mutex carrying thread-safety annotations, a diagnostic name, and a
/// LockRank. Non-movable (like std::mutex); classes embedding one become
/// pinned, which every lock-owning class should be anyway.
class AVM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "avm::Mutex",
                 LockRank rank = LockRank::kLeaf)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AVM_ACQUIRE() {
#ifndef NDEBUG
    mutex_internal::CheckRankOnAcquire(*this);
#endif
    mu_.lock();
#ifndef NDEBUG
    mutex_internal::RecordAcquire(*this);
#endif
  }

  void Unlock() AVM_RELEASE() {
#ifndef NDEBUG
    mutex_internal::RecordRelease(*this);
#endif
    mu_.unlock();
  }

  /// Acquires without blocking; true (with the lock held) on success. Rank
  /// order is enforced on success only — a failed try holds nothing.
  bool TryLock() AVM_TRY_ACQUIRE(true) {
#ifndef NDEBUG
    mutex_internal::CheckRankOnAcquire(*this);
#endif
    const bool locked = mu_.try_lock();
#ifndef NDEBUG
    if (locked) mutex_internal::RecordAcquire(*this);
#endif
    return locked;
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

  /// The wrapped std::mutex, for CondVar's wait plumbing only.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
  const char* const name_;
  const LockRank rank_;
};

/// RAII lock. The scoped-capability annotation lets TSA treat the guarded
/// region as the constructor-to-destructor extent, exactly like lock_guard.
class AVM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AVM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() AVM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over avm::Mutex. Wait releases `mu`, blocks, and
/// reacquires before returning — the rank bookkeeping mirrors that, so a
/// thread parked in Wait holds (for ordering purposes) only the locks below
/// `mu` in its stack.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) AVM_REQUIRES(mu) {
#ifndef NDEBUG
    mutex_internal::RecordRelease(mu);
#endif
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the Mutex wrapper stays the owner.
    std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
    cv_.wait(native);
    native.release();
#ifndef NDEBUG
    mutex_internal::CheckRankOnAcquire(mu);
    mutex_internal::RecordAcquire(mu);
#endif
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace avm
