#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace avm {

/// Error codes used across the library. Modeled after the RocksDB/Abseil
/// canonical code set, restricted to what an embedded array engine needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...). Never fails; unknown codes map to "Unknown".
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error carrier. Functions that can fail return `Status` (or
/// `Result<T>`, see result.h) instead of throwing: exceptions never cross the
/// public API. An OK status carries no message and is cheap to copy.
///
/// [[nodiscard]]: silently dropping a Status return hides failures, so every
/// call site must consume it — return it, branch on ok(), or assert with
/// AVM_CHECK_OK.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}
inline bool operator!=(const Status& a, const Status& b) { return !(a == b); }

}  // namespace avm

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define AVM_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::avm::Status _avm_status = (expr);          \
    if (!_avm_status.ok()) return _avm_status;   \
  } while (0)

