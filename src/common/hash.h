#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace avm {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit constants).
/// Used to hash coordinate vectors and composite keys.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit golden-ratio variant of boost::hash_combine.
  seed ^= value + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4);
  return seed;
}

/// Finalization mix (from MurmurHash3) to spread low-entropy inputs, e.g.
/// small sequential coordinates, across the full 64-bit space.
inline uint64_t HashMix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// Hashes a span of 64-bit integers (coordinates, chunk positions).
inline uint64_t HashInts(const int64_t* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ull ^ n;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, HashMix(static_cast<uint64_t>(data[i])));
  }
  return h;
}

inline uint64_t HashInts(const std::vector<int64_t>& v) {
  return HashInts(v.data(), v.size());
}

}  // namespace avm

