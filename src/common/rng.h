#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace avm {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every randomized component in the library — the maintenance
/// heuristics, workload generators, test sweeps — takes an explicit `Rng` or
/// seed so that runs are reproducible bit-for-bit across platforms, which the
/// C++ standard distributions do not guarantee.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce equal
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal variate (Box–Muller, deterministic).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each component
  /// its own stream from one master seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace avm

