#include "common/mutex.h"

#include <sstream>
#include <vector>

#include "common/check.h"

namespace avm {
namespace mutex_internal {

namespace {

/// The calling thread's held locks in acquisition order. Function-local so
/// the first lock on a fresh thread constructs it lazily; never shrinks
/// below its high-water capacity (lock nesting is shallow, a handful of
/// pointers per thread).
std::vector<const Mutex*>& HeldStack() {
  thread_local std::vector<const Mutex*> held;
  return held;
}

/// "\"name\" (rank N)" — the diagnostic spelling of one lock.
void AppendLock(std::ostringstream* out, const Mutex& mu) {
  *out << '"' << mu.name() << "\" (rank " << static_cast<int>(mu.rank())
       << ')';
}

}  // namespace

void CheckRankOnAcquire(const Mutex& acquiring) {
  const std::vector<const Mutex*>& held = HeldStack();
  const Mutex* violated = nullptr;
  for (const Mutex* mu : held) {
    // Strict ordering: equal ranks are a violation too, both because two
    // same-rank locks nested form an ABBA candidate and because
    // re-acquiring the same (non-recursive) mutex would deadlock outright.
    if (static_cast<int>(mu->rank()) >= static_cast<int>(acquiring.rank())) {
      violated = mu;
      break;
    }
  }
  if (violated == nullptr) return;
  std::ostringstream msg;
  msg << "acquiring ";
  AppendLock(&msg, acquiring);
  msg << " while holding ";
  AppendLock(&msg, *violated);
  msg << "; this thread's held locks in acquisition order: ";
  for (size_t i = 0; i < held.size(); ++i) {
    if (i != 0) msg << " -> ";
    AppendLock(&msg, *held[i]);
  }
  AVM_CHECK(false) << "lock rank order violation: " << msg.str()
                   << ". Locks must be acquired in strictly increasing "
                      "LockRank order (see DESIGN.md lock hierarchy).";
}

void RecordAcquire(const Mutex& mu) { HeldStack().push_back(&mu); }

void RecordRelease(const Mutex& mu) {
  std::vector<const Mutex*>& held = HeldStack();
  // Search from the back: releases are almost always LIFO, and a CondVar
  // wait releasing out of stack order still finds its entry.
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1] == &mu) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  AVM_CHECK(false) << "releasing lock \"" << mu.name()
                   << "\" this thread does not hold";
}

}  // namespace mutex_internal
}  // namespace avm
