#pragma once

/// Clang Thread Safety Analysis annotations, AVM_-prefixed so the codebase
/// owns its spelling. On clang these expand to the `thread_safety` attribute
/// family and are checked by `-Wthread-safety` (the CI thread-safety leg
/// builds with `-Wthread-safety -Wthread-safety-beta -Werror`); on every
/// other compiler they expand to nothing, so GCC builds see plain code.
///
/// The vocabulary (see also DESIGN.md "Lock hierarchy & thread-safety
/// annotations"):
///
///   AVM_CAPABILITY("mutex")   — marks a class as a lockable capability
///                               (avm::Mutex is the one capability type
///                               in this codebase).
///   AVM_SCOPED_CAPABILITY     — marks an RAII lock holder (avm::MutexLock).
///   AVM_GUARDED_BY(mu)        — a data member that may only be read or
///                               written while `mu` is held.
///   AVM_PT_GUARDED_BY(mu)     — a pointer member whose *pointee* is
///                               protected by `mu`.
///   AVM_REQUIRES(mu)          — a function that must be called with `mu`
///                               already held (and does not release it).
///   AVM_ACQUIRE(mu)/AVM_RELEASE(mu)
///                             — a function that acquires / releases `mu`.
///   AVM_TRY_ACQUIRE(b, mu)    — a function that acquires `mu` iff it
///                               returns `b`.
///   AVM_EXCLUDES(mu)          — a function that must NOT be called with
///                               `mu` held (self-deadlock guard).
///   AVM_ACQUIRED_BEFORE/AFTER — declared acquisition order between two
///                               mutexes (the static half of what the
///                               runtime LockRank checker enforces
///                               dynamically across translation units).
///   AVM_ASSERT_CAPABILITY(mu) — a function that dynamically checks `mu`
///                               is held and aborts otherwise.
///   AVM_RETURN_CAPABILITY(mu) — a function returning a reference to `mu`.
///   AVM_NO_THREAD_SAFETY_ANALYSIS
///                             — opts one function out of the analysis;
///                               every use needs a comment saying why.

#if defined(__clang__)
#define AVM_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define AVM_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off clang
#endif

#define AVM_CAPABILITY(x) AVM_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define AVM_SCOPED_CAPABILITY AVM_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define AVM_GUARDED_BY(x) AVM_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define AVM_PT_GUARDED_BY(x) AVM_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define AVM_ACQUIRED_BEFORE(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define AVM_ACQUIRED_AFTER(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define AVM_REQUIRES(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define AVM_REQUIRES_SHARED(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define AVM_ACQUIRE(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define AVM_ACQUIRE_SHARED(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define AVM_RELEASE(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define AVM_RELEASE_SHARED(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define AVM_RELEASE_GENERIC(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

#define AVM_TRY_ACQUIRE(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define AVM_EXCLUDES(...) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define AVM_ASSERT_CAPABILITY(x) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define AVM_RETURN_CAPABILITY(x) \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define AVM_NO_THREAD_SAFETY_ANALYSIS \
  AVM_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
