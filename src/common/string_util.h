#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace avm {

/// Joins the elements of `v` with `sep` using operator<< formatting.
template <typename T>
std::string Join(const std::vector<T>& v, const std::string& sep) {
  std::ostringstream out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << sep;
    out << v[i];
  }
  return out.str();
}

/// "[a, b, c]" rendering of a vector, used in error messages and debugging.
/// Built with += (not `"[" + Join(...)`) — the rvalue operator+ chain trips
/// a GCC 12 -Wrestrict false positive at -O3.
template <typename T>
std::string VecToString(const std::vector<T>& v) {
  std::string out = "[";
  out += Join(v, ", ");
  out += "]";
  return out;
}

/// Human-readable byte count ("343.0 GB", "1.5 KB").
std::string HumanBytes(uint64_t bytes);

/// Fixed-point formatting with `digits` decimals (printf "%.*f").
std::string FormatDouble(double v, int digits);

}  // namespace avm

