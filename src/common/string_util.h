#ifndef AVM_COMMON_STRING_UTIL_H_
#define AVM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace avm {

/// Joins the elements of `v` with `sep` using operator<< formatting.
template <typename T>
std::string Join(const std::vector<T>& v, const std::string& sep) {
  std::ostringstream out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << sep;
    out << v[i];
  }
  return out.str();
}

/// "[a, b, c]" rendering of a vector, used in error messages and debugging.
template <typename T>
std::string VecToString(const std::vector<T>& v) {
  return "[" + Join(v, ", ") + "]";
}

/// Human-readable byte count ("343.0 GB", "1.5 KB").
std::string HumanBytes(uint64_t bytes);

/// Fixed-point formatting with `digits` decimals (printf "%.*f").
std::string FormatDouble(double v, int digits);

}  // namespace avm

#endif  // AVM_COMMON_STRING_UTIL_H_
