#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace avm {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const bool fatal = level_ == LogLevel::kFatal;
  if (fatal || level_ >= g_log_level) {
    // Strip the directory part for readability.
    const char* base = file_;
    for (const char* p = file_; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    std::cerr << "[" << LevelTag(level_) << " " << base << ":" << line_ << "] "
              << stream_.str() << std::endl;
  }
  if (fatal) std::abort();
}

}  // namespace internal_logging
}  // namespace avm
