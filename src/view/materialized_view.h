#pragma once

#include <memory>
#include <string>

#include "cluster/distributed_array.h"
#include "common/result.h"
#include "join/similarity_join.h"
#include "view/view_definition.h"

namespace avm {

/// A materialized array view: the definition, its aggregate layout, and the
/// distributed array holding the eagerly evaluated result. Created by
/// CreateMaterializedView, which registers the view array in the catalog and
/// evaluates the definition query once (the initial "cooking"); thereafter
/// the maintenance module keeps it consistent under batch updates.
class MaterializedView {
 public:
  const ViewDefinition& definition() const { return def_; }
  const AggregateLayout& layout() const { return layout_; }

  /// The view's distributed array (cells hold aggregate *states*).
  DistributedArray& array() { return view_; }
  const DistributedArray& array() const { return view_; }

  /// Handles to the base arrays (equal ids for a self-join view).
  DistributedArray& left_base() { return left_; }
  const DistributedArray& left_base() const { return left_; }
  DistributedArray& right_base() { return right_; }
  const DistributedArray& right_base() const { return right_; }

  /// The join spec equivalent to the view definition, for executors.
  SimilarityJoinSpec JoinSpec() const;

  /// Gathers the view into a single-node array of *finalized* outputs (one
  /// attribute per aggregate spec, e.g. the actual AVG instead of sum+count).
  Result<SparseArray> GatherFinalized() const;

  /// Recomputes the view from scratch into a fresh local array of aggregate
  /// states — the paper's "complete recomputation" strategy, used as the
  /// correctness oracle and as the non-incremental alternative.
  Result<SparseArray> RecomputeReferenceStates() const;

 private:
  friend Result<MaterializedView> CreateMaterializedView(
      ViewDefinition def, std::unique_ptr<ChunkPlacement> placement,
      Catalog* catalog, Cluster* cluster);

  MaterializedView(ViewDefinition def, AggregateLayout layout,
                   DistributedArray view, DistributedArray left,
                   DistributedArray right)
      : def_(std::move(def)),
        layout_(std::move(layout)),
        view_(std::move(view)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  ViewDefinition def_;
  AggregateLayout layout_;
  DistributedArray view_;
  DistributedArray left_;
  DistributedArray right_;
};

/// Registers the view array in the catalog (with `placement` deciding the
/// home of new view chunks) and eagerly materializes the definition query
/// with the distributed similarity-join operator. The initial
/// materialization is not part of any measured maintenance window; callers
/// typically ResetClocks() afterwards.
Result<MaterializedView> CreateMaterializedView(
    ViewDefinition def, std::unique_ptr<ChunkPlacement> placement,
    Catalog* catalog, Cluster* cluster);

}  // namespace avm

