#pragma once

#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "array/schema.h"
#include "common/result.h"
#include "join/mapping.h"
#include "shape/shape.h"

namespace avm {

/// Definition of a materialized array view (Definition 1 of the paper,
/// restricted to one similarity join — the recursive multi-join case is
/// handled by stacking views): the AQL statement
///
///   CREATE ARRAY VIEW V AS
///     SELECT aggs FROM left SIMILARITY JOIN right ON M WITH SHAPE σ
///     GROUP BY <group dims of left>
///
/// A self-join view names the same array on both sides. The view's
/// dimensions are the left operand's dimensions selected by `group_dims`
/// (ranges inherited); its chunking is inherited from the left array unless
/// `view_chunk_extents` overrides it — the paper's "chunking can be either
/// specified explicitly or inferred".
struct ViewDefinition {
  std::string view_name;
  std::string left_array;
  std::string right_array;
  DimMapping mapping = DimMapping::Identity(1);
  Shape shape = Shape(1);
  std::vector<AggregateSpec> aggregates;
  /// Indices of the left array's dimensions the view is keyed on; empty
  /// means all left dimensions.
  std::vector<size_t> group_dims;
  /// Optional per-group-dim chunk extents for the view; empty inherits the
  /// left array's chunking on those dimensions.
  std::vector<int64_t> view_chunk_extents;

  bool IsSelfJoin() const { return left_array == right_array; }

  /// Validates the definition against the base schemas and derives the
  /// view's array schema (group dims + aggregate state attributes). Also
  /// normalizes `group_dims` (empty -> all left dims).
  Result<ArraySchema> DeriveViewSchema(const ArraySchema& left_schema,
                                       const ArraySchema& right_schema);
};

}  // namespace avm

