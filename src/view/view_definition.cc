#include "view/view_definition.h"

namespace avm {

Result<ArraySchema> ViewDefinition::DeriveViewSchema(
    const ArraySchema& left_schema, const ArraySchema& right_schema) {
  if (view_name.empty()) {
    return Status::InvalidArgument("view needs a name");
  }
  if (mapping.num_left_dims() != left_schema.num_dims()) {
    return Status::InvalidArgument(
        "mapping arity does not match the left array");
  }
  if (mapping.num_right_dims() != right_schema.num_dims()) {
    return Status::InvalidArgument(
        "mapping image arity does not match the right array");
  }
  if (shape.num_dims() != right_schema.num_dims()) {
    return Status::InvalidArgument(
        "shape dimensionality does not match the right array");
  }
  if (group_dims.empty()) {
    group_dims.resize(left_schema.num_dims());
    for (size_t d = 0; d < group_dims.size(); ++d) group_dims[d] = d;
  }
  for (size_t d : group_dims) {
    if (d >= left_schema.num_dims()) {
      return Status::InvalidArgument("group dim index out of range");
    }
  }
  if (!view_chunk_extents.empty() &&
      view_chunk_extents.size() != group_dims.size()) {
    return Status::InvalidArgument(
        "view_chunk_extents must have one entry per group dim");
  }

  AVM_ASSIGN_OR_RETURN(
      AggregateLayout layout,
      AggregateLayout::Create(aggregates, right_schema.num_attrs()));

  std::vector<DimensionSpec> dims;
  dims.reserve(group_dims.size());
  for (size_t i = 0; i < group_dims.size(); ++i) {
    DimensionSpec dim = left_schema.dims()[group_dims[i]];
    if (!view_chunk_extents.empty()) {
      if (view_chunk_extents[i] <= 0) {
        return Status::InvalidArgument("non-positive view chunk extent");
      }
      dim.chunk_extent = view_chunk_extents[i];
    }
    dims.push_back(std::move(dim));
  }
  return ArraySchema::Create(view_name, std::move(dims),
                             layout.StateAttributes());
}

}  // namespace avm
