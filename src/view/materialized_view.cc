#include "view/materialized_view.h"

#include <vector>

#include "join/reference.h"

namespace avm {

SimilarityJoinSpec MaterializedView::JoinSpec() const {
  SimilarityJoinSpec spec;
  spec.mapping = def_.mapping;
  spec.shape = def_.shape;
  spec.layout = layout_;
  spec.group_dims = def_.group_dims;
  return spec;
}

Result<SparseArray> MaterializedView::GatherFinalized() const {
  AVM_ASSIGN_OR_RETURN(SparseArray states, view_.Gather());

  // Build the finalized schema: same dims, one output attribute per spec.
  std::vector<Attribute> out_attrs;
  out_attrs.reserve(layout_.num_specs());
  for (const auto& spec : layout_.specs()) {
    out_attrs.push_back({spec.output_name, AttributeType::kDouble});
  }
  AVM_ASSIGN_OR_RETURN(
      ArraySchema out_schema,
      ArraySchema::Create(def_.view_name + "_finalized",
                          states.schema().dims(), std::move(out_attrs)));

  SparseArray out(out_schema);
  std::vector<double> finalized(layout_.num_specs());
  Status status = Status::OK();
  CellCoord coord;
  states.ForEachCell([&](std::span<const int64_t> c,
                         std::span<const double> state) {
    if (!status.ok()) return;
    layout_.Finalize(state, finalized);
    coord.assign(c.begin(), c.end());
    status = out.Set(coord, finalized);
  });
  if (!status.ok()) return status;
  return out;
}

Result<SparseArray> MaterializedView::RecomputeReferenceStates() const {
  AVM_ASSIGN_OR_RETURN(SparseArray left_local, left_.Gather());
  AVM_ASSIGN_OR_RETURN(SparseArray right_local, right_.Gather());
  return ReferenceJoinAggregate(left_local, right_local, JoinSpec(),
                                view_.schema());
}

Result<MaterializedView> CreateMaterializedView(
    ViewDefinition def, std::unique_ptr<ChunkPlacement> placement,
    Catalog* catalog, Cluster* cluster) {
  AVM_ASSIGN_OR_RETURN(DistributedArray left,
                       DistributedArray::Open(def.left_array, catalog,
                                              cluster));
  AVM_ASSIGN_OR_RETURN(DistributedArray right,
                       DistributedArray::Open(def.right_array, catalog,
                                              cluster));
  AVM_ASSIGN_OR_RETURN(
      ArraySchema view_schema,
      def.DeriveViewSchema(left.schema(), right.schema()));
  AVM_ASSIGN_OR_RETURN(
      AggregateLayout layout,
      AggregateLayout::Create(def.aggregates, right.schema().num_attrs()));
  AVM_ASSIGN_OR_RETURN(
      DistributedArray view,
      DistributedArray::Create(std::move(view_schema), std::move(placement),
                               catalog, cluster));

  MaterializedView mv(std::move(def), std::move(layout), std::move(view),
                      std::move(left), std::move(right));
  auto stats = ExecuteDistributedJoinAggregate(mv.left_base(), mv.right_base(),
                                               mv.JoinSpec(), &mv.array());
  if (!stats.ok()) return stats.status();
  return mv;
}

}  // namespace avm
