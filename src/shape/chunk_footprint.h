#pragma once

#include <unordered_set>
#include <vector>

#include "array/coords.h"
#include "common/result.h"
#include "shape/shape.h"

namespace avm {

/// The chunk-granularity footprint of a shape: the set of chunk-position
/// deltas d such that some cell offset o ∈ σ can lead from a cell of chunk
/// c to a cell of chunk c + d, for identically chunked and aligned grids
/// (regular chunking with the given per-dimension extents).
///
/// For a cell at in-chunk position i ∈ [0, E) and offset o, the reachable
/// chunk delta on that dimension is floor((i + o) / E) ∈
/// { floor(o / E), floor((E - 1 + o) / E) } — at most two consecutive
/// values — so the exact footprint is computed with |σ| * 2^d marks.
///
/// This is what makes chunk-pair enumeration *exact* instead of
/// bounding-box approximate: an L1 (diamond) shape several chunks wide
/// covers roughly half the chunk pairs its bounding box suggests, and the
/// ∆-shapes of query integration (Section 5) produce footprints
/// proportional to |∆| — the quantity the paper's Figure 6 trades off
/// against |query|.
class ChunkFootprint {
 public:
  /// Computes the footprint of `shape` for chunks of the given per-dim
  /// extents (one per shape dimension, each > 0).
  static Result<ChunkFootprint> Compute(const Shape& shape,
                                        const std::vector<int64_t>& extents);

  /// Chunk deltas in lexicographic order.
  const std::vector<CellCoord>& deltas() const { return deltas_; }
  size_t size() const { return deltas_.size(); }
  bool empty() const { return deltas_.empty(); }

  bool Contains(const CellCoord& delta) const {
    return set_.find(delta) != set_.end();
  }

 private:
  ChunkFootprint() = default;

  std::vector<CellCoord> deltas_;
  std::unordered_set<CellCoord, CoordHash> set_;
};

}  // namespace avm

