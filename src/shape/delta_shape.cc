#include "shape/delta_shape.h"

namespace avm {

Result<DeltaShape> ComputeDeltaShape(const Shape& view_shape,
                                     const Shape& query_shape) {
  if (view_shape.num_dims() != query_shape.num_dims()) {
    return Status::InvalidArgument(
        "delta shape: view and query shapes have different dimensionality");
  }
  AVM_ASSIGN_OR_RETURN(Shape plus, Shape::Difference(query_shape, view_shape));
  AVM_ASSIGN_OR_RETURN(Shape minus,
                       Shape::Difference(view_shape, query_shape));
  return DeltaShape{std::move(plus), std::move(minus)};
}

}  // namespace avm
