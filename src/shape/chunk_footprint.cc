#include "shape/chunk_footprint.h"

#include <algorithm>

namespace avm {

namespace {

/// Floor division toward negative infinity (C++ integer division truncates
/// toward zero).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

Result<ChunkFootprint> ChunkFootprint::Compute(
    const Shape& shape, const std::vector<int64_t>& extents) {
  if (extents.size() != shape.num_dims()) {
    return Status::InvalidArgument(
        "footprint extents must match the shape's dimensionality");
  }
  for (int64_t e : extents) {
    if (e <= 0) {
      return Status::InvalidArgument("non-positive chunk extent");
    }
  }
  ChunkFootprint footprint;
  const size_t dims = shape.num_dims();
  // Per offset, each dimension reaches one or two consecutive chunk deltas;
  // enumerate their cross product.
  std::vector<int64_t> lo(dims), hi(dims);
  CellCoord delta(dims);
  for (const auto& offset : shape.offsets()) {
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = FloorDiv(offset[d], extents[d]);
      hi[d] = FloorDiv(extents[d] - 1 + offset[d], extents[d]);
    }
    // Odometer over the (at most 2^dims) corner combinations.
    for (size_t i = 0; i < dims; ++i) delta[i] = lo[i];
    for (;;) {
      if (footprint.set_.insert(delta).second) {
        footprint.deltas_.push_back(delta);
      }
      size_t d = dims;
      bool done = true;
      while (d-- > 0) {
        if (delta[d] < hi[d]) {
          ++delta[d];
          done = false;
          break;
        }
        delta[d] = lo[d];
      }
      if (done) break;
    }
  }
  std::sort(footprint.deltas_.begin(), footprint.deltas_.end());
  return footprint;
}

}  // namespace avm
