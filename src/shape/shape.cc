#include "shape/shape.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace avm {

namespace {

/// Normalizes a dim-subset argument: empty means "all dims".
std::vector<size_t> NormalizeDims(size_t num_dims, std::vector<size_t> dims) {
  if (dims.empty()) {
    dims.resize(num_dims);
    for (size_t i = 0; i < num_dims; ++i) dims[i] = i;
  }
  for (size_t d : dims) AVM_CHECK_LT(d, num_dims);
  return dims;
}

/// Enumerates every offset assignment over `dims` with per-component range
/// [-reach, reach], invoking `fn` on a full-dimensional offset vector.
template <typename Fn>
void EnumerateBox(size_t num_dims, const std::vector<size_t>& dims,
                  int64_t reach, Fn&& fn) {
  CellCoord offset(num_dims, 0);
  std::vector<int64_t> cursor(dims.size(), -reach);
  if (dims.empty()) {
    fn(offset);
    return;
  }
  for (;;) {
    for (size_t i = 0; i < dims.size(); ++i) offset[dims[i]] = cursor[i];
    fn(offset);
    size_t d = dims.size();
    bool done = true;
    while (d-- > 0) {
      if (cursor[d] < reach) {
        ++cursor[d];
        done = false;
        break;
      }
      cursor[d] = -reach;
    }
    if (done) return;
  }
}

}  // namespace

Shape::Shape(size_t num_dims, std::vector<CellCoord> sorted_offsets)
    : num_dims_(num_dims), sorted_(std::move(sorted_offsets)) {
  set_.reserve(sorted_.size() * 2);
  for (const auto& o : sorted_) set_.insert(o);
}

Result<Shape> Shape::FromOffsets(size_t num_dims,
                                 std::vector<CellCoord> offsets) {
  for (const auto& o : offsets) {
    if (o.size() != num_dims) {
      return Status::InvalidArgument(
          "shape offset arity mismatch: expected " + std::to_string(num_dims) +
          " components, got " + std::to_string(o.size()));
    }
  }
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  return Shape(num_dims, std::move(offsets));
}

Shape Shape::LinfBall(size_t num_dims, int64_t radius,
                      std::vector<size_t> dims, bool include_center) {
  AVM_CHECK_GE(radius, 0);
  dims = NormalizeDims(num_dims, std::move(dims));
  std::vector<CellCoord> offsets;
  EnumerateBox(num_dims, dims, radius, [&](const CellCoord& o) {
    offsets.push_back(o);
  });
  auto shape = FromOffsets(num_dims, std::move(offsets));
  AVM_CHECK(shape.ok());
  Shape result = std::move(shape).value();
  if (!include_center) {
    CellCoord zero(num_dims, 0);
    auto diff = Difference(
        result, FromOffsets(num_dims, {zero}).value());
    AVM_CHECK(diff.ok());
    return std::move(diff).value();
  }
  return result;
}

Shape Shape::L1Ball(size_t num_dims, int64_t radius, std::vector<size_t> dims,
                    bool include_center) {
  AVM_CHECK_GE(radius, 0);
  dims = NormalizeDims(num_dims, std::move(dims));
  std::vector<CellCoord> offsets;
  EnumerateBox(num_dims, dims, radius, [&](const CellCoord& o) {
    int64_t norm = 0;
    for (size_t d : dims) norm += std::abs(o[d]);
    if (norm > radius) return;
    if (!include_center && norm == 0) return;
    offsets.push_back(o);
  });
  auto shape = FromOffsets(num_dims, std::move(offsets));
  AVM_CHECK(shape.ok());
  return std::move(shape).value();
}

Shape Shape::L2Ball(size_t num_dims, double radius, std::vector<size_t> dims,
                    bool include_center) {
  AVM_CHECK_GE(radius, 0.0);
  dims = NormalizeDims(num_dims, std::move(dims));
  const int64_t reach = static_cast<int64_t>(std::floor(radius));
  const double r2 = radius * radius;
  std::vector<CellCoord> offsets;
  EnumerateBox(num_dims, dims, reach, [&](const CellCoord& o) {
    double norm2 = 0;
    for (size_t d : dims) {
      norm2 += static_cast<double>(o[d]) * static_cast<double>(o[d]);
    }
    if (norm2 > r2) return;
    if (!include_center && norm2 == 0) return;
    offsets.push_back(o);
  });
  auto shape = FromOffsets(num_dims, std::move(offsets));
  AVM_CHECK(shape.ok());
  return std::move(shape).value();
}

Shape Shape::HammingBall(size_t num_dims, int64_t radius, int64_t reach,
                         std::vector<size_t> dims, bool include_center) {
  AVM_CHECK_GE(radius, 0);
  AVM_CHECK_GE(reach, 0);
  dims = NormalizeDims(num_dims, std::move(dims));
  std::vector<CellCoord> offsets;
  EnumerateBox(num_dims, dims, reach, [&](const CellCoord& o) {
    int64_t nonzero = 0;
    for (size_t d : dims) nonzero += (o[d] != 0) ? 1 : 0;
    if (nonzero > radius) return;
    if (!include_center && nonzero == 0) return;
    offsets.push_back(o);
  });
  auto shape = FromOffsets(num_dims, std::move(offsets));
  AVM_CHECK(shape.ok());
  return std::move(shape).value();
}

Shape Shape::WeightedBall(size_t num_dims, Norm norm, double radius,
                          std::vector<double> weights,
                          std::vector<size_t> dims, bool include_center) {
  AVM_CHECK_GE(radius, 0.0);
  dims = NormalizeDims(num_dims, std::move(dims));
  AVM_CHECK_EQ(weights.size(), dims.size());
  for (double w : weights) AVM_CHECK_GT(w, 0.0);
  // Per-dim reach: |o_d| / w_d <= radius in every norm.
  int64_t reach = 0;
  for (double w : weights) {
    reach = std::max(reach, static_cast<int64_t>(std::floor(radius * w)));
  }
  std::vector<CellCoord> offsets;
  EnumerateBox(num_dims, dims, reach, [&](const CellCoord& o) {
    double value = 0.0;
    bool zero = true;
    for (size_t i = 0; i < dims.size(); ++i) {
      const double scaled =
          std::abs(static_cast<double>(o[dims[i]])) / weights[i];
      zero = zero && o[dims[i]] == 0;
      switch (norm) {
        case Norm::kL1:
          value += scaled;
          break;
        case Norm::kL2:
          value += scaled * scaled;
          break;
        case Norm::kLinf:
          value = std::max(value, scaled);
          break;
      }
    }
    if (norm == Norm::kL2) value = std::sqrt(value);
    if (value > radius + 1e-12) return;
    if (!include_center && zero) return;
    offsets.push_back(o);
  });
  auto shape = FromOffsets(num_dims, std::move(offsets));
  AVM_CHECK(shape.ok());
  return std::move(shape).value();
}

Shape Shape::Window(size_t num_dims, size_t dim, int64_t lo, int64_t hi) {
  AVM_CHECK_LT(dim, num_dims);
  AVM_CHECK_LE(lo, hi);
  std::vector<CellCoord> offsets;
  offsets.reserve(static_cast<size_t>(hi - lo + 1));
  for (int64_t v = lo; v <= hi; ++v) {
    CellCoord o(num_dims, 0);
    o[dim] = v;
    offsets.push_back(std::move(o));
  }
  auto shape = FromOffsets(num_dims, std::move(offsets));
  AVM_CHECK(shape.ok());
  return std::move(shape).value();
}

Result<Shape> Shape::MinkowskiSum(const Shape& x, const Shape& y) {
  if (x.num_dims() != y.num_dims()) {
    return Status::InvalidArgument("MinkowskiSum: dimensionality mismatch");
  }
  std::vector<CellCoord> offsets;
  offsets.reserve(x.size() * y.size());
  for (const auto& a : x.offsets()) {
    for (const auto& b : y.offsets()) {
      CellCoord sum(a.size());
      for (size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + b[i];
      offsets.push_back(std::move(sum));
    }
  }
  return FromOffsets(x.num_dims(), std::move(offsets));
}

Box Shape::BoundingBox() const {
  Box box;
  box.lo.assign(num_dims_, 1);
  box.hi.assign(num_dims_, 0);  // degenerate when empty
  if (sorted_.empty()) return box;
  box.lo = sorted_.front();
  box.hi = sorted_.front();
  for (const auto& o : sorted_) {
    for (size_t i = 0; i < num_dims_; ++i) {
      box.lo[i] = std::min(box.lo[i], o[i]);
      box.hi[i] = std::max(box.hi[i], o[i]);
    }
  }
  return box;
}

bool Shape::IsSymmetric() const {
  CellCoord neg(num_dims_);
  for (const auto& o : sorted_) {
    for (size_t i = 0; i < num_dims_; ++i) neg[i] = -o[i];
    if (!Contains(neg)) return false;
  }
  return true;
}

Shape Shape::Reflected() const {
  std::vector<CellCoord> offsets;
  offsets.reserve(sorted_.size());
  for (const auto& o : sorted_) {
    CellCoord neg(num_dims_);
    for (size_t i = 0; i < num_dims_; ++i) neg[i] = -o[i];
    offsets.push_back(std::move(neg));
  }
  auto shape = FromOffsets(num_dims_, std::move(offsets));
  AVM_CHECK(shape.ok());
  return std::move(shape).value();
}

Result<Shape> Shape::Union(const Shape& a, const Shape& b) {
  if (a.num_dims() != b.num_dims()) {
    return Status::InvalidArgument("shape Union: dimensionality mismatch");
  }
  std::vector<CellCoord> offsets = a.sorted_;
  offsets.insert(offsets.end(), b.sorted_.begin(), b.sorted_.end());
  return FromOffsets(a.num_dims(), std::move(offsets));
}

Result<Shape> Shape::Intersection(const Shape& a, const Shape& b) {
  if (a.num_dims() != b.num_dims()) {
    return Status::InvalidArgument(
        "shape Intersection: dimensionality mismatch");
  }
  std::vector<CellCoord> offsets;
  for (const auto& o : a.sorted_) {
    if (b.Contains(o)) offsets.push_back(o);
  }
  return FromOffsets(a.num_dims(), std::move(offsets));
}

Result<Shape> Shape::Difference(const Shape& a, const Shape& b) {
  if (a.num_dims() != b.num_dims()) {
    return Status::InvalidArgument("shape Difference: dimensionality mismatch");
  }
  std::vector<CellCoord> offsets;
  for (const auto& o : a.sorted_) {
    if (!b.Contains(o)) offsets.push_back(o);
  }
  return FromOffsets(a.num_dims(), std::move(offsets));
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < sorted_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "(";
    for (size_t d = 0; d < num_dims_; ++d) {
      if (d > 0) out << ",";
      out << sorted_[i][d];
    }
    out << ")";
  }
  out << "}";
  return out.str();
}

}  // namespace avm
