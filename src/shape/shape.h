#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "array/coords.h"
#include "common/result.h"

namespace avm {

/// A similarity-join shape σ: a finite set of integer offset vectors applied
/// around each (mapped) cell. The paper models σ as an attribute-less array
/// with the dimensionality of the inner join operand; we represent it
/// directly as its set of non-empty offsets.
///
/// Shapes are immutable after construction. Offsets are kept sorted
/// lexicographically so iteration is deterministic, with a hash set alongside
/// for O(1) membership tests (needed by the ∆-shape query rewrite).
///
/// Factories cover the distances in the paper — Lp-norm balls, per-dimension
/// windows — and a Minkowski-sum composer to build products such as the PTF-5
/// view shape: L1(1) on (ra,dec) × a 200-step look-back window on time.
class Shape {
 public:
  /// An empty shape of the given dimensionality (joins nothing).
  explicit Shape(size_t num_dims) : num_dims_(num_dims) {}

  /// Builds a shape from an explicit offset list; duplicates are removed.
  /// All offsets must have `num_dims` components.
  static Result<Shape> FromOffsets(size_t num_dims,
                                   std::vector<CellCoord> offsets);

  /// L∞ ball of the given radius: every offset with |o_i| <= radius on the
  /// selected dims (all dims when `dims` is empty) and 0 elsewhere. A
  /// (2r+1)^k hypercube. `include_center` keeps/removes the all-zero offset.
  static Shape LinfBall(size_t num_dims, int64_t radius,
                        std::vector<size_t> dims = {},
                        bool include_center = true);

  /// L1 ball: offsets with Σ|o_i| <= radius on the selected dims. L1(1) is
  /// the paper's 5-cell cross.
  static Shape L1Ball(size_t num_dims, int64_t radius,
                      std::vector<size_t> dims = {},
                      bool include_center = true);

  /// L2 ball: offsets with Σ o_i^2 <= radius^2 on the selected dims. The
  /// radius may be fractional.
  static Shape L2Ball(size_t num_dims, double radius,
                      std::vector<size_t> dims = {},
                      bool include_center = true);

  /// Hamming ball: offsets with at most `radius` non-zero components among
  /// the selected dims, each non-zero component bounded by |o_i| <= reach.
  /// (A bound is required to keep the shape finite.)
  static Shape HammingBall(size_t num_dims, int64_t radius, int64_t reach,
                           std::vector<size_t> dims = {},
                           bool include_center = true);

  /// A one-dimensional window along `dim`: offsets with o_dim in [lo, hi]
  /// and 0 elsewhere. Window(d, -199, 0) is a 200-step look-back.
  static Shape Window(size_t num_dims, size_t dim, int64_t lo, int64_t hi);

  /// Norm kinds for WeightedBall.
  enum class Norm { kL1, kL2, kLinf };

  /// Anisotropic norm ball: offsets with ||(o_d / w_d)||_norm <= radius on
  /// the selected dims (w given per selected dim, in order). With weights
  /// equal to the chunk extents this builds *chunk-scale* shapes — e.g. an
  /// L∞ radius of 2 chunks over a (ra, dec) grid of 100 x 50 cell chunks —
  /// matching the granularity at which the paper's ∆-shape analysis
  /// operates.
  static Shape WeightedBall(size_t num_dims, Norm norm, double radius,
                            std::vector<double> weights,
                            std::vector<size_t> dims = {},
                            bool include_center = true);

  /// Minkowski sum {a + b : a ∈ x, b ∈ y}: composes shapes over disjoint (or
  /// overlapping) dimension subsets into product shapes.
  static Result<Shape> MinkowskiSum(const Shape& x, const Shape& y);

  size_t num_dims() const { return num_dims_; }
  size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// True if `offset` is one of the shape's offsets.
  bool Contains(const CellCoord& offset) const {
    return set_.find(offset) != set_.end();
  }

  /// Offsets in deterministic (lexicographic) order.
  const std::vector<CellCoord>& offsets() const { return sorted_; }

  /// Per-dimension inclusive [min, max] offset bounds; the box used to
  /// expand a chunk's extent when enumerating join partners. Empty shapes
  /// return a degenerate box with lo > hi.
  Box BoundingBox() const;

  /// True if for every offset o, -o is also in the shape. Symmetric shapes
  /// make the two directions of a self-join mirror images.
  bool IsSymmetric() const;

  /// The point reflection {-o : o ∈ σ}. A cell y is "seen" by cell x under
  /// σ exactly when x sees y under the reflection; maintenance uses it to
  /// find the existing cells whose aggregates a new cell affects.
  Shape Reflected() const;

  /// Set algebra (inputs must have equal dimensionality).
  static Result<Shape> Union(const Shape& a, const Shape& b);
  static Result<Shape> Intersection(const Shape& a, const Shape& b);
  /// Offsets of `a` not in `b`.
  static Result<Shape> Difference(const Shape& a, const Shape& b);

  bool operator==(const Shape& other) const {
    return num_dims_ == other.num_dims_ && sorted_ == other.sorted_;
  }

  /// "{(0,0), (0,1), ...}" rendering.
  std::string ToString() const;

 private:
  Shape(size_t num_dims, std::vector<CellCoord> sorted_offsets);

  size_t num_dims_;
  std::vector<CellCoord> sorted_;
  std::unordered_set<CellCoord, CoordHash> set_;
};

}  // namespace avm

