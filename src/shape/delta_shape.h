#pragma once

#include "common/result.h"
#include "shape/shape.h"

namespace avm {

/// The ∆ shape of Section 5: the positional symmetric set difference between
/// a view's shape and a query's shape, split into its signed halves.
///
/// To answer a query with shape Q from a view materialized with shape V the
/// differential query adds contributions over `plus = Q \ V` and retracts
/// contributions over `minus = V \ Q`:
///     answer = view ⊕ join(plus) ⊖ join(minus).
/// The paper's cost heuristic compares |∆| = |plus| + |minus| against |Q|.
struct DeltaShape {
  Shape plus;   // query \ view: contributions missing from the view
  Shape minus;  // view \ query: contributions to retract

  /// Total ∆ size; the numerator of the paper's |∆|/|query| decision ratio.
  size_t size() const { return plus.size() + minus.size(); }

  /// True when the view shape already equals the query shape.
  bool empty() const { return plus.empty() && minus.empty(); }
};

/// Computes the ∆ shape between `view_shape` and `query_shape`; fails when
/// their dimensionality differs. For the paper's Figure 4b examples:
/// Delta(L1(1) view, L∞(1) query) has |plus| = 4, |minus| = 0.
Result<DeltaShape> ComputeDeltaShape(const Shape& view_shape,
                                     const Shape& query_shape);

}  // namespace avm

