// Ablation: where do the heuristics' gains come from? The same PTF-5 real
// batch sequence is maintained under the three static placement strategies
// of Section 2.1 — spatial range partitioning (joins concentrate: load
// imbalance), hash (adjacent chunks scatter: communication), round-robin —
// crossed with the three maintenance methods.
//
// Expected: the baseline suffers most under range placement (the paper's
// "most of the joins are concentrated on a single node"); the heuristics'
// relative gain shrinks under round-robin, where static placement is
// already balanced for uniform-ish update distributions.

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

struct Row {
  std::string placement;
  double seconds[3] = {0, 0, 0};
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void RunCase(::benchmark::State& state, const std::string& placement,
             MaintenanceMethod method) {
  for (auto _ : state) {
    ExperimentScale scale = FigureScale();
    scale.placement = placement;
    PreparedExperiment experiment =
        OrDie(PrepareExperiment(DatasetKind::kPtf5, BatchRegime::kReal,
                                scale),
              "prepare experiment");
    BatchSeries series =
        OrDie(RunMaintenanceSeries(&experiment, method, PlannerOptions()),
              "maintenance series");
    state.counters["sim_total_s"] = series.TotalMaintenanceSeconds();

    auto& rows = Rows();
    auto it = std::find_if(rows.begin(), rows.end(), [&](const Row& r) {
      return r.placement == placement;
    });
    if (it == rows.end()) {
      rows.push_back({placement, {0, 0, 0}});
      it = rows.end() - 1;
    }
    it->seconds[static_cast<int>(method)] =
        series.TotalMaintenanceSeconds();
  }
}

void RegisterAll() {
  for (const char* placement : {"range", "hash", "round-robin"}) {
    for (MaintenanceMethod method :
         {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
          MaintenanceMethod::kReassign}) {
      const std::string name =
          "BM_AblationPlacement/" + std::string(placement) + "/" +
          std::string(MaintenanceMethodName(method));
      std::string p = placement;
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [p, method](::benchmark::State& state) {
            RunCase(state, p, method);
          })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Ablation: static placement strategy vs maintenance method "
      "(PTF-5 real, 10 batches, simulated seconds) =====\n");
  std::printf("%-14s %13s %13s %13s\n", "placement", "baseline",
              "differential", "reassign");
  for (const auto& row : Rows()) {
    std::printf("%-14s %12.4fs %12.4fs %12.4fs\n", row.placement.c_str(),
                row.seconds[0], row.seconds[1], row.seconds[2]);
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
