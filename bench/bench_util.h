#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/check.h"
#include "harness/experiment.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace avm::bench {

/// Host threads the figure benchmarks execute maintenance with. Defaults to
/// 1 (serial); set from AVM_THREADS or the --threads=N flag (see
/// ParseThreadsFlag). Simulated makespans are identical at any value — only
/// real wall-clock changes.
inline int& BenchThreads() {
  static int threads = [] {
    const char* env = std::getenv("AVM_THREADS");
    const int t = env == nullptr ? 1 : std::atoi(env);
    return t < 1 ? 1 : t;
  }();
  return threads;
}

/// Consumes a --threads=N (or --threads N) argument before
/// benchmark::Initialize sees it, storing the value in BenchThreads().
inline void ParseThreadsFlag(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      BenchThreads() = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (arg == "--threads" && i + 1 < *argc) {
      BenchThreads() = std::max(1, std::atoi(argv[++i]));
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

/// Peak resident set size of this process in bytes, 0 where unavailable.
/// Monotone over the process lifetime (the kernel's high-water mark), so a
/// benchmark reports it once after its run to bound real host memory — the
/// figure that should shrink when chunk movement stops deep-copying.
inline uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Output paths for the telemetry artifacts, empty = not requested.
inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}

inline std::string& MetricsOutPath() {
  static std::string path;
  return path;
}

/// Consumes --trace-out[=| ]FILE and --metrics-out[=| ]FILE before
/// benchmark::Initialize sees them. Requesting either artifact turns
/// telemetry collection on for the whole process; without these flags the
/// benches run with telemetry disabled (the configuration the Release bench
/// gate measures).
inline void ParseTelemetryFlags(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      TraceOutPath() = arg.substr(12);
    } else if (arg == "--trace-out" && i + 1 < *argc) {
      TraceOutPath() = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      MetricsOutPath() = arg.substr(14);
    } else if (arg == "--metrics-out" && i + 1 < *argc) {
      MetricsOutPath() = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  if (!TraceOutPath().empty() || !MetricsOutPath().empty()) {
    EnableTelemetry();
  }
}

/// Writes the requested telemetry artifacts (call once, after the benchmark
/// loop). Dies on I/O failure — a bench that silently drops its requested
/// trace is worse than one that aborts.
inline void FinishTelemetry() {
  if (!TraceOutPath().empty()) {
    AVM_CHECK(WriteChromeTrace(TraceOutPath()))
        << "failed to write trace to " << TraceOutPath();
    std::fprintf(stderr, "wrote Chrome trace to %s\n", TraceOutPath().c_str());
  }
  if (!MetricsOutPath().empty()) {
    AVM_CHECK(WriteMetricsJson(MetricsRegistry::Global().Snapshot(),
                               MetricsOutPath()))
        << "failed to write metrics to " << MetricsOutPath();
    std::fprintf(stderr, "wrote metrics to %s\n", MetricsOutPath().c_str());
  }
}

/// Scale used by every figure benchmark: the paper's 8-worker + coordinator
/// cluster, 10 update batches, and a laptop-sized PTF/GEO dataset whose
/// structural knobs (skew, pointing windows, drift) mirror the real
/// workloads. Set AVM_BENCH_SCALE=tiny for smoke runs or =large for a
/// bigger sweep; AVM_THREADS / --threads=N sets the host thread count.
inline ExperimentScale FigureScale() {
  ExperimentScale scale;
  scale.num_workers = 8;
  scale.num_threads = BenchThreads();
  scale.num_batches = 10;
  scale.ptf.time_range = 2240;  // 8 base nights + up to 12 update nights
  scale.ptf.ra_range = 4000;    // a 40x40 (ra, dec) chunk grid: the real
  scale.ptf.dec_range = 2000;   // catalog's occupied-chunk space is sparse
  scale.ptf.base_cells = 24000;
  scale.ptf.base_pointed_frac = 0.98;  // thin archival background
  scale.ptf.pointing_ra_chunks = 4;    // one night covers a 4x3-chunk window
  scale.ptf.pointing_dec_chunks = 3;
  scale.ptf.batch_cells_min = 4000;
  scale.ptf.batch_cells_max = 6000;
  scale.geo.seed_pois = 4000;
  scale.geo.batch_frac = 0.01;

  const char* env = std::getenv("AVM_BENCH_SCALE");
  const std::string mode = env == nullptr ? "default" : env;
  if (mode == "tiny") {
    scale.ptf.base_cells = 4000;
    scale.ptf.batch_cells_min = 600;
    scale.ptf.batch_cells_max = 1000;
    scale.geo.seed_pois = 800;
  } else if (mode == "large") {
    scale.ptf.base_cells = 80000;
    scale.ptf.batch_cells_min = 8000;
    scale.ptf.batch_cells_max = 12000;
    scale.geo.seed_pois = 12000;
  }
  return scale;
}

/// Dies loudly if a Result/Status-bearing expression failed: benchmarks must
/// not silently measure garbage.
template <typename T>
T OrDie(Result<T> result, const char* what) {
  AVM_CHECK(result.ok()) << what << ": " << result.status().ToString();
  return std::move(result).value();
}

inline void OrDie(const Status& status, const char* what) {
  AVM_CHECK(status.ok()) << what << ": " << status.ToString();
}

/// The batch regimes a dataset is evaluated under in Figure 3/5/9: PTF rows
/// use real/correlated/periodic, the GEO row random/correlated/periodic.
inline std::vector<BatchRegime> RegimesFor(DatasetKind kind) {
  if (kind == DatasetKind::kGeo) {
    return {BatchRegime::kRandom, BatchRegime::kCorrelated,
            BatchRegime::kPeriodic};
  }
  return {BatchRegime::kReal, BatchRegime::kCorrelated,
          BatchRegime::kPeriodic};
}

/// C-string label for printf-style tables (the name views are literals).
inline const char* MethodLabel(MaintenanceMethod method) {
  return MaintenanceMethodName(method).data();
}

/// A PTF experiment whose batch sequence is produced on demand from the
/// retained generator — the sensitivity sweeps (Figure 10) need custom
/// batch construction that PrepareExperiment's fixed regimes do not cover.
struct PtfFixture {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<PtfGenerator> generator;
  std::unique_ptr<MaterializedView> view;

  /// Builds the base array and the PTF-25 view (L∞(2) on (ra, dec), any
  /// time) under spatial range placement.
  static Result<PtfFixture> MakePtf25(const ExperimentScale& scale) {
    PtfFixture fixture;
    fixture.catalog = std::make_unique<Catalog>();
    fixture.cluster =
        std::make_unique<Cluster>(scale.num_workers, scale.cost_model);
    PtfOptions ptf = scale.ptf;
    ptf.seed ^= scale.seed;
    AVM_ASSIGN_OR_RETURN(PtfGenerator gen, PtfGenerator::Create(ptf));
    fixture.generator = std::make_unique<PtfGenerator>(std::move(gen));
    AVM_ASSIGN_OR_RETURN(
        DistributedArray base,
        DistributedArray::Create(fixture.generator->schema(),
                                 MakeRangePlacement(1),
                                 fixture.catalog.get(),
                                 fixture.cluster.get()));
    AVM_RETURN_IF_ERROR(base.Ingest(fixture.generator->base()));
    ViewDefinition def;
    def.view_name = "PTF25_view";
    def.left_array = "PTF";
    def.right_array = "PTF";
    def.mapping = DimMapping::Identity(3);
    AVM_ASSIGN_OR_RETURN(
        def.shape,
        Shape::MinkowskiSum(Shape::LinfBall(3, 2, {1, 2}),
                            Shape::Window(3, 0, -(ptf.time_range - 1),
                                          ptf.time_range - 1)));
    def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
    AVM_ASSIGN_OR_RETURN(
        MaterializedView view,
        CreateMaterializedView(std::move(def), MakeRangePlacement(1),
                               fixture.catalog.get(), fixture.cluster.get()));
    fixture.view = std::make_unique<MaterializedView>(std::move(view));
    fixture.cluster->ResetClocks();
    return fixture;
  }
};

}  // namespace avm::bench

