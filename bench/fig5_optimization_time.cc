// Figure 5: average optimization time per update batch — the coordinator's
// wall-clock cost of computing the maintenance plan, per dataset and method.
//
// Baseline's bar is the triple-generation time (the (p, q, v) metadata
// preprocessing every method performs); differential adds Algorithm 1;
// reassign adds Algorithms 2 and 3 on top. Expected shape per the paper:
// differential adds minimal overhead over baseline, reassign at most ~2x the
// baseline, and every bar is a small fraction of the maintenance time it
// buys back.

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

struct OptRow {
  std::string dataset;
  std::string regime;
  double seconds[3] = {0, 0, 0};        // per method, mean per batch
  double triple_gen[3] = {0, 0, 0};     // mean triple-generation share
};

std::vector<OptRow>& Rows() {
  static auto* rows = new std::vector<OptRow>();
  return *rows;
}

void RunCase(::benchmark::State& state, DatasetKind kind, BatchRegime regime,
             MaintenanceMethod method) {
  for (auto _ : state) {
    PreparedExperiment experiment = OrDie(
        PrepareExperiment(kind, regime, FigureScale()), "prepare experiment");
    BatchSeries series =
        OrDie(RunMaintenanceSeries(&experiment, method, PlannerOptions()),
              "maintenance series");
    double triple_mean = 0.0;
    for (const auto& r : series.reports) triple_mean += r.triple_gen_seconds;
    triple_mean /= static_cast<double>(series.reports.size());
    state.counters["opt_mean_s"] = series.MeanOptimizationSeconds();
    state.counters["triple_gen_mean_s"] = triple_mean;
    state.counters["maintenance_total_s"] = series.TotalMaintenanceSeconds();

    auto& rows = Rows();
    const std::string dataset(DatasetKindName(kind));
    const std::string regime_name(BatchRegimeName(regime));
    auto it = std::find_if(rows.begin(), rows.end(), [&](const OptRow& row) {
      return row.dataset == dataset && row.regime == regime_name;
    });
    if (it == rows.end()) {
      rows.push_back({dataset, regime_name, {0, 0, 0}, {0, 0, 0}});
      it = rows.end() - 1;
    }
    it->seconds[static_cast<int>(method)] = series.MeanOptimizationSeconds();
    it->triple_gen[static_cast<int>(method)] = triple_mean;
  }
}

void RegisterAll() {
  for (DatasetKind kind :
       {DatasetKind::kPtf5, DatasetKind::kPtf25, DatasetKind::kGeo}) {
    for (BatchRegime regime : RegimesFor(kind)) {
      for (MaintenanceMethod method :
           {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
            MaintenanceMethod::kReassign}) {
        const std::string name =
            "BM_Fig5/" + std::string(DatasetKindName(kind)) + "/" +
            std::string(BatchRegimeName(regime)) + "/" +
            std::string(MaintenanceMethodName(method));
        ::benchmark::RegisterBenchmark(
            name.c_str(),
            [kind, regime, method](::benchmark::State& state) {
              RunCase(state, kind, regime, method);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Figure 5: average optimization time per update batch "
      "(wall-clock seconds) =====\n");
  std::printf("%-10s %-12s %14s %14s %14s\n", "dataset", "batches",
              "baseline", "differential", "reassign");
  for (const auto& row : Rows()) {
    std::printf("%-10s %-12s %13.5fs %13.5fs %13.5fs\n", row.dataset.c_str(),
                row.regime.c_str(), row.seconds[0], row.seconds[1],
                row.seconds[2]);
  }
  std::printf(
      "(baseline = triple generation only; differential adds Algorithm 1; "
      "reassign adds Algorithms 2+3)\n");
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
