// Figure 3: view maintenance time per update batch, for every dataset
// (PTF-5, PTF-25, GEO), batch regime (real/random, correlated, periodic),
// and method (baseline, differential, reassign) — the paper's 9-panel grid.
//
// Each benchmark runs one (dataset, regime, method) series of batches on the
// simulated 8-worker cluster; `sim_total_s` is the summed per-batch
// simulated makespan (the quantity Figure 3 plots per batch; the per-batch
// series is printed after the run). Expected shape per the paper: the
// heuristics never lose to the baseline; reassign converges to the largest
// gains on correlated batches and roughly halves repeated periodic batches.

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

struct SeriesKey {
  DatasetKind kind;
  BatchRegime regime;
};

std::vector<std::pair<SeriesKey, std::vector<BatchSeries>>>& AllResults() {
  static auto* results =
      new std::vector<std::pair<SeriesKey, std::vector<BatchSeries>>>();
  return *results;
}

void RunSeries(::benchmark::State& state, DatasetKind kind,
               BatchRegime regime, MaintenanceMethod method) {
  for (auto _ : state) {
    PreparedExperiment experiment =
        OrDie(PrepareExperiment(kind, regime, FigureScale()),
              "prepare experiment");
    BatchSeries series = OrDie(
        RunMaintenanceSeries(&experiment, method, PlannerOptions()),
        "maintenance series");
    state.counters["sim_total_s"] = series.TotalMaintenanceSeconds();
    state.counters["wall_exec_s"] = series.TotalExecutionWallSeconds();
    state.counters["threads"] = static_cast<double>(BenchThreads());
    state.counters["opt_mean_s"] = series.MeanOptimizationSeconds();
    state.counters["batches"] = static_cast<double>(series.reports.size());

    // Stash the series for the paper-style table printed at exit.
    auto& results = AllResults();
    auto it = std::find_if(results.begin(), results.end(),
                           [&](const auto& entry) {
                             return entry.first.kind == kind &&
                                    entry.first.regime == regime;
                           });
    if (it == results.end()) {
      results.push_back({SeriesKey{kind, regime}, {}});
      it = results.end() - 1;
    }
    it->second.push_back(std::move(series));
  }
}

void RegisterAll() {
  for (DatasetKind kind :
       {DatasetKind::kPtf5, DatasetKind::kPtf25, DatasetKind::kGeo}) {
    for (BatchRegime regime : RegimesFor(kind)) {
      for (MaintenanceMethod method :
           {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
            MaintenanceMethod::kReassign}) {
        const std::string name =
            "BM_Fig3/" + std::string(DatasetKindName(kind)) + "/" +
            std::string(BatchRegimeName(regime)) + "/" +
            std::string(MaintenanceMethodName(method));
        ::benchmark::RegisterBenchmark(
            name.c_str(),
            [kind, regime, method](::benchmark::State& state) {
              RunSeries(state, kind, regime, method);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintPaperTables() {
  std::printf("\n===== Figure 3: maintenance time per update batch "
              "(simulated seconds) =====\n");
  for (const auto& [key, series] : AllResults()) {
    PrintSeriesTable(std::string(DatasetKindName(key.kind)) + " / " +
                         std::string(BatchRegimeName(key.regime)),
                     series);
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  avm::bench::ParseTelemetryFlags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTables();
  avm::bench::FinishTelemetry();
  ::benchmark::Shutdown();
  return 0;
}
