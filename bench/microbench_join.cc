// Microbenchmark for the similarity-join chunk kernel: times the offset-
// linearized kernel against a faithful copy of the pre-linearization kernel
// on single-chunk self-joins, sweeping dimensionality, shape radius, and
// chunk density. Every config additionally runs a representation A/B of the
// optimized kernel — forced-sparse, forced-dense (explicitly densified
// copy), and auto (whatever the hysteresis policy picks) — with the dense
// fragments gated bit-identical (tolerance 0) against the sparse reference.
// Emits machine-readable results to BENCH_join.json (or --out=PATH);
// --smoke shrinks the sweep for CI, which gates the forced-dense interior
// speedup at the 2d_r2_d90 preset.
//
// The baseline below intentionally reproduces the old kernel's inner loops —
// per-offset per-dimension bounds checks, grid InChunkOffset (divide/modulo
// per dim), and a per-match fragment map lookup — so the reported speedup
// isolates the kernel changes. Both kernels run on today's Chunk storage, so
// the baseline already benefits from the flat cell index; the speedup is
// conservative.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "array/chunk.h"
#include "array/chunk_grid.h"
#include "array/schema.h"
#include "array/sparse_array.h"
#include "common/check.h"
#include "common/rng.h"
#include "join/compiled_shape.h"
#include "join/join_kernel.h"
#include "join/mapping.h"
#include "shape/shape.h"
#include "telemetry/stopwatch.h"
#include "telemetry/telemetry.h"

namespace avm {
namespace {

// ---------------------------------------------------------------------------
// Baseline: the pre-linearization kernel, copied verbatim (strategy rule
// included) so before/after numbers come from one binary on one machine.
// ---------------------------------------------------------------------------

class BaselineFragmentAccumulator {
 public:
  BaselineFragmentAccumulator(const AggregateLayout& layout,
                              const ViewTarget& target,
                              std::map<ChunkId, Chunk>* out)
      : layout_(layout),
        target_(target),
        identity_(layout.num_state_slots()),
        out_(out) {
    layout_.InitState(identity_);
  }

  Status Add(std::span<const int64_t> left_coord,
             std::span<const double> right_values, int multiplicity) {
    const auto& group_dims = *target_.group_dims;
    view_coord_.resize(group_dims.size());
    for (size_t d = 0; d < group_dims.size(); ++d) {
      view_coord_[d] = left_coord[group_dims[d]];
    }
    const ChunkId v = target_.view_grid->IdOfCell(view_coord_);
    const uint64_t offset = target_.view_grid->InChunkOffset(view_coord_);
    auto it = out_->find(v);
    if (it == out_->end()) {
      it = out_
               ->emplace(v, Chunk(view_coord_.size(),
                                  layout_.num_state_slots()))
               .first;
    }
    Chunk& frag = it->second;
    double* state = frag.GetMutableCell(offset);
    if (state == nullptr) {
      frag.UpsertCell(offset, view_coord_, identity_);
      state = frag.GetMutableCell(offset);
    }
    return layout_.UpdateState({state, layout_.num_state_slots()},
                               right_values, multiplicity);
  }

 private:
  const AggregateLayout& layout_;
  const ViewTarget& target_;
  std::vector<double> identity_;
  CellCoord view_coord_;
  std::map<ChunkId, Chunk>* out_;
};

Status BaselineJoinAggregateChunkPair(const Chunk& left,
                                      const RightOperand& right,
                                      const DimMapping& mapping,
                                      const Shape& shape,
                                      const AggregateLayout& layout,
                                      const ViewTarget& target,
                                      int multiplicity,
                                      std::map<ChunkId, Chunk>* out_fragments) {
  if (shape.empty() || left.empty() || right.chunk->empty()) {
    return Status::OK();
  }
  BaselineFragmentAccumulator acc(layout, target, out_fragments);
  const Box right_box = right.grid->ChunkBoxOfId(right.chunk_id);
  CellCoord base;
  CellCoord probe(right_box.lo.size());

  const bool probe_offsets = shape.size() <= right.chunk->num_cells();
  if (probe_offsets) {
    for (size_t row = 0; row < left.num_cells(); ++row) {
      const auto left_coord = left.CoordOfRow(row);
      mapping.ApplyInto(left_coord, &base);
      for (const auto& offset : shape.offsets()) {
        bool inside = true;
        for (size_t d = 0; d < probe.size(); ++d) {
          probe[d] = base[d] + offset[d];
          if (probe[d] < right_box.lo[d] || probe[d] > right_box.hi[d]) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
        const double* values =
            right.chunk->GetCell(right.grid->InChunkOffset(probe));
        if (values == nullptr) continue;
        AVM_RETURN_IF_ERROR(
            acc.Add(left_coord, {values, right.chunk->num_attrs()},
                    multiplicity));
      }
    }
  } else {
    CellCoord delta(probe.size());
    for (size_t row = 0; row < left.num_cells(); ++row) {
      const auto left_coord = left.CoordOfRow(row);
      mapping.ApplyInto(left_coord, &base);
      for (size_t rrow = 0; rrow < right.chunk->num_cells(); ++rrow) {
        const auto right_coord = right.chunk->CoordOfRow(rrow);
        for (size_t d = 0; d < delta.size(); ++d) {
          delta[d] = right_coord[d] - base[d];
        }
        if (!shape.Contains(delta)) continue;
        AVM_RETURN_IF_ERROR(acc.Add(left_coord, right.chunk->ValuesOfRow(rrow),
                                    multiplicity));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct BenchConfig {
  std::string name;
  size_t num_dims = 2;
  int64_t radius = 2;      // L∞ radius of the shape
  double density = 0.5;    // fill fraction of the chunk
};

/// Pins the process densification policy for a scope; arrays built by the
/// bench must stay sparse so the forced-sparse column is actually sparse,
/// then the auto column re-enables the policy deliberately.
class ScopedDensificationMode {
 public:
  explicit ScopedDensificationMode(DensificationMode mode)
      : saved_(GetDensificationMode()) {
    SetDensificationMode(mode);
  }
  ~ScopedDensificationMode() { SetDensificationMode(saved_); }
  ScopedDensificationMode(const ScopedDensificationMode&) = delete;
  ScopedDensificationMode& operator=(const ScopedDensificationMode&) = delete;

 private:
  DensificationMode saved_;
};

struct BenchResult {
  BenchConfig config;
  size_t shape_offsets = 0;
  size_t right_cells = 0;
  uint64_t pairs_folded = 0;
  double baseline_s = 0.0;
  double optimized_s = 0.0;
  // Throughputs, per second of one kernel invocation.
  double baseline_pairs_per_sec = 0.0;
  double optimized_pairs_per_sec = 0.0;
  double baseline_cells_per_sec = 0.0;
  double optimized_cells_per_sec = 0.0;
  double speedup = 0.0;
  // Representation A/B of the optimized kernel on the same inputs.
  // `optimized_s` above is the forced-sparse column; `dense_s` runs both
  // sides of the self-join on an explicitly densified copy; `auto_s` runs
  // on a copy left to the hysteresis policy (`auto_rep` records its pick).
  double dense_s = 0.0;
  double auto_s = 0.0;
  const char* auto_rep = "sparse";
  double dense_cells_per_sec = 0.0;
  // Forced-sparse over forced-dense kernel time: the dense-interior payoff.
  double dense_interior_speedup = 0.0;
};

/// Single-chunk array spanning [0, extent)^nd with one double attribute,
/// filled to `density` by deterministic Bernoulli draws.
SparseArray MakeDenseChunkArray(size_t num_dims, int64_t extent,
                                double density, uint64_t seed) {
  std::vector<DimensionSpec> dims(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    // += rather than `"d" + ...`: the rvalue operator+ chain trips a GCC 12
    // -Wrestrict false positive at -O3.
    std::string dim_name = "d";
    dim_name += std::to_string(d);
    dims[d] = {std::move(dim_name), 0, extent - 1, extent};
  }
  auto schema = ArraySchema::Create("bench", std::move(dims),
                                    {{"v", AttributeType::kDouble}});
  AVM_CHECK(schema.ok()) << schema.status().ToString();
  SparseArray array(std::move(schema).value());
  Rng rng(seed);
  CellCoord coord(num_dims, 0);
  for (;;) {
    if (rng.Bernoulli(density)) {
      const double v = rng.UniformDouble() * 10.0;
      AVM_CHECK(array.Set(coord, {&v, 1}).ok());
    }
    size_t d = num_dims;
    while (d-- > 0) {
      if (++coord[d] < extent) break;
      coord[d] = 0;
      if (d == 0) return array;
    }
  }
}

uint64_t CountFoldedPairs(const std::map<ChunkId, Chunk>& fragments,
                          const AggregateLayout& layout) {
  // Slot 0 is the COUNT state: its total equals the matched pairs folded.
  double total = 0.0;
  for (const auto& [id, chunk] : fragments) {
    for (size_t row = 0; row < chunk.num_cells(); ++row) {
      total += chunk.ValuesOfRow(row)[layout.slot_of(0)];
    }
  }
  return static_cast<uint64_t>(total + 0.5);
}

/// Times `run` (which executes one kernel invocation) with calibrated
/// repetitions; returns seconds per invocation (best of three trials).
template <typename Fn>
double TimePerRun(Fn&& run, double target_seconds) {
  Stopwatch calibrate;
  run();
  const double once = calibrate.ElapsedSeconds();
  size_t reps = 1;
  if (once < target_seconds) {
    reps = static_cast<size_t>(target_seconds / (once + 1e-9)) + 1;
    if (reps > 10000) reps = 10000;
  }
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    Stopwatch timer;
    for (size_t i = 0; i < reps; ++i) run();
    const double per_run = timer.ElapsedSeconds() / static_cast<double>(reps);
    if (per_run < best) best = per_run;
  }
  return best;
}

BenchResult RunConfig(const BenchConfig& config, int64_t extent,
                      double target_seconds) {
  // Build forced-sparse so the baseline and forced-sparse columns measure
  // the coordinate-list representation even at densities past the
  // auto-densify threshold.
  ScopedDensificationMode pin_sparse(DensificationMode::kForceSparse);
  const SparseArray array = MakeDenseChunkArray(
      config.num_dims, extent, config.density, /*seed=*/0xC0FFEE ^ extent);
  const Chunk* chunk = array.GetChunk(0);
  AVM_CHECK(chunk != nullptr) << "empty bench chunk";
  AVM_CHECK(chunk->rep() == ChunkRep::kSparse) << "bench chunk not sparse";

  Chunk dense_chunk(*chunk);
  dense_chunk.Densify(array.grid(), /*id=*/0);
  Chunk auto_chunk(*chunk);
  {
    ScopedDensificationMode pin_auto(DensificationMode::kAuto);
    auto_chunk.MaybeAdaptRepresentation(array.grid(), /*id=*/0);
  }

  const Shape shape = Shape::LinfBall(config.num_dims, config.radius);
  const DimMapping mapping = DimMapping::Identity(config.num_dims);
  std::vector<size_t> group_dims(config.num_dims);
  for (size_t d = 0; d < config.num_dims; ++d) group_dims[d] = d;

  auto layout_result = AggregateLayout::Create(
      {{AggregateFunction::kCount, 0, "cnt"},
       {AggregateFunction::kSum, 0, "sum"}},
      /*num_base_attrs=*/1);
  AVM_CHECK(layout_result.ok()) << layout_result.status().ToString();
  const AggregateLayout layout = std::move(layout_result).value();

  const RightOperand rop{chunk, 0, &array.grid()};
  const ViewTarget target{&group_dims, &array.grid()};
  auto compiled_result =
      CompiledShapeCache::Global().Get(shape, mapping, array.grid());
  AVM_CHECK(compiled_result.ok()) << compiled_result.status().ToString();
  const CompiledShape& compiled = *compiled_result.value();

  // Correctness gate: both kernels must agree before either is timed.
  std::map<ChunkId, Chunk> base_frags;
  std::map<ChunkId, Chunk> opt_frags;
  AVM_CHECK(BaselineJoinAggregateChunkPair(*chunk, rop, mapping, shape, layout,
                                           target, 1, &base_frags)
                .ok());
  AVM_CHECK(JoinAggregateChunkPair(*chunk, rop, compiled, layout, target, 1,
                                   &opt_frags)
                .ok());
  AVM_CHECK_EQ(base_frags.size(), opt_frags.size());
  for (const auto& [id, frag] : base_frags) {
    auto it = opt_frags.find(id);
    AVM_CHECK(it != opt_frags.end());
    AVM_CHECK(frag.ContentEquals(it->second, 1e-9))
        << "kernel mismatch on " << config.name;
  }

  // Bit-identity gate for the dense path: the vectorized interior must
  // reproduce the sparse reference exactly (tolerance 0), not approximately
  // — determinism of maintained views depends on it.
  const RightOperand dense_rop{&dense_chunk, 0, &array.grid()};
  const RightOperand auto_rop{&auto_chunk, 0, &array.grid()};
  std::map<ChunkId, Chunk> dense_frags;
  AVM_CHECK(JoinAggregateChunkPair(dense_chunk, dense_rop, compiled, layout,
                                   target, 1, &dense_frags)
                .ok());
  AVM_CHECK_EQ(dense_frags.size(), opt_frags.size());
  for (const auto& [id, frag] : dense_frags) {
    auto it = opt_frags.find(id);
    AVM_CHECK(it != opt_frags.end());
    AVM_CHECK(frag.ContentEquals(it->second, 0.0))
        << "dense kernel not bit-identical on " << config.name;
  }

  BenchResult result;
  result.config = config;
  result.shape_offsets = shape.size();
  result.right_cells = chunk->num_cells();
  result.pairs_folded = CountFoldedPairs(base_frags, layout);

  result.baseline_s = TimePerRun(
      [&] {
        std::map<ChunkId, Chunk> frags;
        AVM_CHECK(BaselineJoinAggregateChunkPair(*chunk, rop, mapping, shape,
                                                 layout, target, 1, &frags)
                      .ok());
      },
      target_seconds);
  result.optimized_s = TimePerRun(
      [&] {
        std::map<ChunkId, Chunk> frags;
        AVM_CHECK(JoinAggregateChunkPair(*chunk, rop, compiled, layout, target,
                                         1, &frags)
                      .ok());
      },
      target_seconds);
  result.dense_s = TimePerRun(
      [&] {
        std::map<ChunkId, Chunk> frags;
        AVM_CHECK(JoinAggregateChunkPair(dense_chunk, dense_rop, compiled,
                                         layout, target, 1, &frags)
                      .ok());
      },
      target_seconds);
  result.auto_s = TimePerRun(
      [&] {
        std::map<ChunkId, Chunk> frags;
        AVM_CHECK(JoinAggregateChunkPair(auto_chunk, auto_rop, compiled,
                                         layout, target, 1, &frags)
                      .ok());
      },
      target_seconds);
  result.auto_rep =
      auto_chunk.rep() == ChunkRep::kDense ? "dense" : "sparse";

  const double cells = static_cast<double>(chunk->num_cells());
  const double pairs = static_cast<double>(result.pairs_folded);
  result.baseline_pairs_per_sec = pairs / result.baseline_s;
  result.optimized_pairs_per_sec = pairs / result.optimized_s;
  result.baseline_cells_per_sec = cells / result.baseline_s;
  result.optimized_cells_per_sec = cells / result.optimized_s;
  result.speedup = result.baseline_s / result.optimized_s;
  result.dense_cells_per_sec = cells / result.dense_s;
  result.dense_interior_speedup = result.optimized_s / result.dense_s;
  return result;
}

/// In-process A/B of the telemetry gate's cost on the optimized kernel:
/// per-run seconds with collection disabled (the shipping configuration —
/// every instrumentation site is one predicted branch) and enabled (live
/// counters). Measured back to back in one process so the comparison is free
/// of cross-run and cross-machine noise; the CI bench-smoke gate bounds
/// overhead_frac.
struct TelemetryAB {
  double disabled_s = 0.0;
  double enabled_s = 0.0;
  double overhead_frac = 0.0;
};

TelemetryAB MeasureTelemetryOverhead(const BenchConfig& config, int64_t extent,
                                     double target_seconds) {
  // Sparse on purpose: the A/B tracks the shipping sparse probe path, so
  // its numbers stay comparable across the representation change.
  ScopedDensificationMode pin_sparse(DensificationMode::kForceSparse);
  const SparseArray array = MakeDenseChunkArray(
      config.num_dims, extent, config.density, /*seed=*/0xC0FFEE ^ extent);
  const Chunk* chunk = array.GetChunk(0);
  AVM_CHECK(chunk != nullptr) << "empty telemetry A/B chunk";
  const Shape shape = Shape::LinfBall(config.num_dims, config.radius);
  const DimMapping mapping = DimMapping::Identity(config.num_dims);
  std::vector<size_t> group_dims(config.num_dims);
  for (size_t d = 0; d < config.num_dims; ++d) group_dims[d] = d;
  auto layout_result = AggregateLayout::Create(
      {{AggregateFunction::kCount, 0, "cnt"},
       {AggregateFunction::kSum, 0, "sum"}},
      /*num_base_attrs=*/1);
  AVM_CHECK(layout_result.ok()) << layout_result.status().ToString();
  const AggregateLayout layout = std::move(layout_result).value();
  const RightOperand rop{chunk, 0, &array.grid()};
  const ViewTarget target{&group_dims, &array.grid()};
  auto compiled_result =
      CompiledShapeCache::Global().Get(shape, mapping, array.grid());
  AVM_CHECK(compiled_result.ok()) << compiled_result.status().ToString();
  const CompiledShape& compiled = *compiled_result.value();
  auto run = [&] {
    std::map<ChunkId, Chunk> frags;
    AVM_CHECK(
        JoinAggregateChunkPair(*chunk, rop, compiled, layout, target, 1, &frags)
            .ok());
  };

  AVM_CHECK(!TelemetryEnabled())
      << "telemetry A/B must start from the disabled state";
  TelemetryAB ab;
  ab.disabled_s = TimePerRun(run, target_seconds);
  EnableTelemetry();
  ab.enabled_s = TimePerRun(run, target_seconds);
  DisableTelemetry();
  ab.overhead_frac = ab.enabled_s / ab.disabled_s - 1.0;
  return ab;
}

void WriteJson(const std::string& path, const std::string& mode,
               int64_t extent_2d, const std::vector<BenchResult>& results,
               const BenchResult& default_preset,
               const BenchResult& dense_gate_preset,
               const BenchResult& calib_probe,
               const BenchResult& calib_scan,
               const TelemetryAB& telemetry) {
  FILE* out = std::fopen(path.c_str(), "w");
  AVM_CHECK(out != nullptr) << "cannot open " << path;

  // Per-unit inner-loop costs measured on this machine, from the sparse
  // calibration configs (hit rates low enough that per-match fold costs —
  // which are strategy-independent — barely contaminate the numbers).
  // Probes = left_cells * |σ|; scan visits = left_cells * right_cells.
  const double probe_ns =
      calib_probe.optimized_s * 1e9 /
      (static_cast<double>(calib_probe.right_cells) *
       static_cast<double>(calib_probe.shape_offsets));
  const double scan_ns =
      calib_scan.optimized_s * 1e9 /
      (static_cast<double>(calib_scan.right_cells) *
       static_cast<double>(calib_scan.right_cells));

  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"microbench_join\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(out, "  \"chunk_extent_2d\": %lld,\n",
               static_cast<long long>(extent_2d));
  std::fprintf(out,
               "  \"default_preset\": {\"name\": \"%s\", "
               "\"baseline_cells_per_sec\": %.6e, "
               "\"optimized_cells_per_sec\": %.6e, \"speedup\": %.4f},\n",
               default_preset.config.name.c_str(),
               default_preset.baseline_cells_per_sec,
               default_preset.optimized_cells_per_sec,
               default_preset.speedup);
  // Dense-path per-unit costs from the same calibration configs' forced-
  // dense column; these are what kDenseProbeCostPerOffset /
  // kDenseScanCostPerRightCell in join/join_kernel.h model.
  const double dense_probe_ns =
      calib_probe.dense_s * 1e9 /
      (static_cast<double>(calib_probe.right_cells) *
       static_cast<double>(calib_probe.shape_offsets));
  const double dense_scan_ns =
      calib_scan.dense_s * 1e9 /
      (static_cast<double>(calib_scan.right_cells) *
       static_cast<double>(calib_scan.right_cells));
  std::fprintf(out,
               "  \"dense_gate\": {\"name\": \"%s\", \"sparse_s\": %.6e, "
               "\"dense_s\": %.6e, \"dense_interior_speedup\": %.4f},\n",
               dense_gate_preset.config.name.c_str(),
               dense_gate_preset.optimized_s, dense_gate_preset.dense_s,
               dense_gate_preset.dense_interior_speedup);
  std::fprintf(out,
               "  \"measured_costs\": {\"probe_ns\": %.4f, \"scan_ns\": %.4f, "
               "\"scan_over_probe\": %.4f, \"dense_probe_ns\": %.4f, "
               "\"dense_scan_ns\": %.4f, \"sparse_over_dense_probe\": "
               "%.4f},\n",
               probe_ns, scan_ns, scan_ns / probe_ns, dense_probe_ns,
               dense_scan_ns, probe_ns / dense_probe_ns);
  std::fprintf(out,
               "  \"telemetry\": {\"disabled_s\": %.6e, \"enabled_s\": %.6e, "
               "\"overhead_frac\": %.4f},\n",
               telemetry.disabled_s, telemetry.enabled_s,
               telemetry.overhead_frac);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"dims\": %zu, \"radius\": %lld, "
        "\"density\": %.2f, \"shape_offsets\": %zu, \"right_cells\": %zu, "
        "\"pairs_folded\": %llu, \"baseline_s\": %.6e, \"optimized_s\": "
        "%.6e, \"baseline_pairs_per_sec\": %.6e, \"optimized_pairs_per_sec\": "
        "%.6e, \"baseline_cells_per_sec\": %.6e, \"optimized_cells_per_sec\": "
        "%.6e, \"speedup\": %.4f, \"dense_s\": %.6e, \"auto_s\": %.6e, "
        "\"auto_rep\": \"%s\", \"dense_cells_per_sec\": %.6e, "
        "\"dense_interior_speedup\": %.4f}%s\n",
        r.config.name.c_str(), r.config.num_dims,
        static_cast<long long>(r.config.radius), r.config.density,
        r.shape_offsets, r.right_cells,
        static_cast<unsigned long long>(r.pairs_folded), r.baseline_s,
        r.optimized_s, r.baseline_pairs_per_sec, r.optimized_pairs_per_sec,
        r.baseline_cells_per_sec, r.optimized_cells_per_sec, r.speedup,
        r.dense_s, r.auto_s, r.auto_rep, r.dense_cells_per_sec,
        r.dense_interior_speedup, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_join.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  const int64_t extent_2d = smoke ? 32 : 64;
  const int64_t extent_3d = smoke ? 8 : 16;
  const double target_seconds = smoke ? 0.01 : 0.1;

  std::vector<BenchConfig> configs;
  if (smoke) {
    configs.push_back({"2d_r2_d50", 2, 2, 0.5});
    configs.push_back({"3d_r1_d50", 3, 1, 0.5});
    // High-density preset the CI dense-interior gate reads.
    configs.push_back({"2d_r2_d90", 2, 2, 0.9});
  } else {
    for (size_t nd : {size_t{2}, size_t{3}}) {
      for (int64_t r : {int64_t{1}, int64_t{2}, int64_t{3}}) {
        for (double density : {0.25, 0.5, 0.9}) {
          char name[64];
          std::snprintf(name, sizeof(name), "%zud_r%lld_d%d", nd,
                        static_cast<long long>(r),
                        static_cast<int>(density * 100 + 0.5));
          configs.push_back({name, nd, r, density});
        }
      }
    }
  }

  std::vector<BenchResult> results;
  size_t default_preset_index = SIZE_MAX;
  size_t dense_gate_index = SIZE_MAX;
  std::printf("%-12s %8s %8s %10s %12s %12s %8s %12s %8s %7s\n", "config",
              "|sigma|", "cells", "pairs", "base cell/s", "opt cell/s",
              "speedup", "dense cell/s", "dns spd", "auto");
  for (const BenchConfig& config : configs) {
    const int64_t extent = config.num_dims == 2 ? extent_2d : extent_3d;
    results.push_back(RunConfig(config, extent, target_seconds));
    const BenchResult& r = results.back();
    std::printf("%-12s %8zu %8zu %10llu %12.3e %12.3e %7.2fx %12.3e %7.2fx "
                "%7s\n",
                r.config.name.c_str(), r.shape_offsets, r.right_cells,
                static_cast<unsigned long long>(r.pairs_folded),
                r.baseline_cells_per_sec, r.optimized_cells_per_sec,
                r.speedup, r.dense_cells_per_sec, r.dense_interior_speedup,
                r.auto_rep);
    if (r.config.name == "2d_r2_d50") default_preset_index = results.size() - 1;
    if (r.config.name == "2d_r2_d90") dense_gate_index = results.size() - 1;
  }
  AVM_CHECK(default_preset_index != SIZE_MAX)
      << "sweep lost the default preset";
  AVM_CHECK(dense_gate_index != SIZE_MAX)
      << "sweep lost the dense-gate preset";

  // Forced-scan config: the shape is far past the probe-vs-scan crossover
  // (|σ| > kScanCostPerRightCell * right_cells), so both kernels take the
  // scan strategy. Included so the sweep covers both strategies end to end.
  const BenchResult scan_result =
      RunConfig({"2d_scan_r32_d25", 2, 32, 0.25}, extent_2d, target_seconds);
  std::printf("%-18s %8zu %8zu %10llu %12.3e %12.3e %7.2fx (scan)\n",
              scan_result.config.name.c_str(), scan_result.shape_offsets,
              scan_result.right_cells,
              static_cast<unsigned long long>(scan_result.pairs_folded),
              scan_result.baseline_cells_per_sec,
              scan_result.optimized_cells_per_sec, scan_result.speedup);
  results.push_back(scan_result);

  // Cost-model calibration: 2%-density configs whose ~2% hit rates keep the
  // strategy-independent per-match fold cost out of the timings, isolating
  // the per-probe (flat-index lookup) and per-visit (delta + shape
  // membership) inner-loop costs that ChooseJoinStrategy's constants model.
  // The probe config's 25-offset shape stays under the probe threshold; the
  // scan config's 441-offset shape forces the scan strategy.
  const BenchResult calib_probe =
      RunConfig({"calib_probe_r2_d2", 2, 2, 0.02}, extent_2d, target_seconds);
  const BenchResult calib_scan =
      RunConfig({"calib_scan_r10_d2", 2, 10, 0.02}, extent_2d, target_seconds);
  AVM_CHECK(ChooseJoinStrategy(calib_probe.shape_offsets,
                               calib_probe.right_cells) ==
            JoinStrategy::kProbeOffsets)
      << "probe calibration config no longer picks the probe strategy";
  AVM_CHECK(ChooseJoinStrategy(calib_scan.shape_offsets,
                               calib_scan.right_cells) ==
            JoinStrategy::kScanRight)
      << "scan calibration config no longer picks the scan strategy";
  results.push_back(calib_probe);
  results.push_back(calib_scan);

  const BenchResult& default_preset = results[default_preset_index];
  const BenchResult& dense_gate_preset = results[dense_gate_index];
  const TelemetryAB telemetry = MeasureTelemetryOverhead(
      default_preset.config, extent_2d, target_seconds);
  std::printf("telemetry A/B on %s: disabled %.3e s, enabled %.3e s "
              "(overhead %+.2f%%)\n",
              default_preset.config.name.c_str(), telemetry.disabled_s,
              telemetry.enabled_s, telemetry.overhead_frac * 100.0);
  WriteJson(out_path, smoke ? "smoke" : "full", extent_2d, results,
            default_preset, dense_gate_preset, calib_probe, calib_scan,
            telemetry);
  std::printf("wrote %s (default preset speedup: %.2fx; dense interior at "
              "%s: %.2fx)\n",
              out_path.c_str(), default_preset.speedup,
              dense_gate_preset.config.name.c_str(),
              dense_gate_preset.dense_interior_speedup);
  return 0;
}

}  // namespace
}  // namespace avm

int main(int argc, char** argv) { return avm::Main(argc, argv); }
