// Ablation: the reassignment stages' tunables, on the workload where they
// matter most (PTF-5 correlated batches).
//
//   - history window W and decay (Algorithm 3's weights W_l = decay^l):
//     W = 1 reacts only to the last batch ("highly-unstable reassignments"
//     the paper warns about); larger windows smooth the signal.
//   - charge_view_move (Algorithm 2): charging the relocation of the view
//     chunk itself (the MIP's x-transfer the printed heuristic omits)
//     suppresses home churn.
//   - cpu_threshold_slack (Algorithm 3): 0 disables base-chunk moves
//     entirely, isolating stage 3's contribution.

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

struct Variant {
  const char* label;
  PlannerOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"default (W=5, decay=.5)", PlannerOptions()});
  {
    PlannerOptions o;
    o.history_window = 1;
    variants.push_back({"window=1", o});
  }
  {
    PlannerOptions o;
    o.history_decay = 0.9;
    variants.push_back({"decay=0.9", o});
  }
  {
    PlannerOptions o;
    o.charge_view_move = false;
    variants.push_back({"no view-move charge", o});
  }
  {
    PlannerOptions o;
    o.cpu_threshold_slack = 0.0;
    variants.push_back({"no stage-3 moves", o});
  }
  {
    PlannerOptions o;
    o.cpu_threshold_slack = 4.0;
    variants.push_back({"slack=4", o});
  }
  return variants;
}

struct Row {
  std::string label;
  double total = 0;
  double last_batch = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void RunVariant(::benchmark::State& state, const Variant& variant) {
  for (auto _ : state) {
    PreparedExperiment experiment =
        OrDie(PrepareExperiment(DatasetKind::kPtf5, BatchRegime::kCorrelated,
                                FigureScale()),
              "prepare experiment");
    BatchSeries series =
        OrDie(RunMaintenanceSeries(&experiment, MaintenanceMethod::kReassign,
                                   variant.options),
              "maintenance series");
    state.counters["sim_total_s"] = series.TotalMaintenanceSeconds();
    Rows().push_back({variant.label, series.TotalMaintenanceSeconds(),
                      series.reports.back().maintenance_seconds});
  }
}

void RegisterAll() {
  static const std::vector<Variant> variants = Variants();
  for (const Variant& variant : variants) {
    const std::string name =
        "BM_AblationReassign/" + std::string(variant.label);
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [&variant](::benchmark::State& state) { RunVariant(state, variant); })
        ->Unit(::benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Ablation: reassignment tunables (PTF-5 correlated, reassign "
      "method, simulated seconds) =====\n");
  std::printf("%-26s %12s %14s\n", "variant", "total", "last batch");
  for (const auto& row : Rows()) {
    std::printf("%-26s %11.4fs %13.4fs\n", row.label.c_str(), row.total,
                row.last_batch);
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
