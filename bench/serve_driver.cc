// Concurrent query serving vs nightly maintenance: N reader threads evaluate
// a fixed probe query against snapshot-isolated view epochs while the control
// thread commits PTF-25 maintenance batches, each commit publishing a new
// epoch. Reports per-phase query latency (quiesced vs during-maintenance
// p50/p99), epoch-retirement lag, and a final bit-match of the last epoch's
// served content against the maintained view — the serve layer's whole value
// proposition is that the "maintain" column stays close to the "quiesced"
// one instead of blocking behind the batch.
//
// Emits BENCH_serve.json (or --out=PATH); --smoke shrinks the phases for CI,
// where the serve-smoke gate enforces p99_maintain <= 5x p99_quiesced.
// --readers=N sets the query thread count (default 4).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "maintenance/maintainer.h"
#include "serve/epoch_manager.h"
#include "serve/snapshot_query.h"
#include "telemetry/stopwatch.h"

namespace avm::bench {
namespace {

struct PhaseStats {
  uint64_t queries = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

double Percentile(std::vector<double>* sorted_latencies, double q) {
  if (sorted_latencies->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_latencies->size() - 1));
  return (*sorted_latencies)[index];
}

PhaseStats Summarize(std::vector<std::vector<double>> per_thread) {
  std::vector<double> all;
  for (const std::vector<double>& latencies : per_thread) {
    all.insert(all.end(), latencies.begin(), latencies.end());
  }
  std::sort(all.begin(), all.end());
  PhaseStats stats;
  stats.queries = all.size();
  stats.p50_s = Percentile(&all, 0.5);
  stats.p99_s = Percentile(&all, 0.99);
  stats.max_s = all.empty() ? 0.0 : all.back();
  return stats;
}

/// Runs `readers` query threads against `manager` until `control` returns,
/// then summarizes their latencies. Every query must succeed and come from a
/// non-decreasing epoch per thread.
template <typename Fn>
PhaseStats RunPhase(const EpochManager& manager, const SnapshotQuery& probe,
                    int readers, Fn&& control) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Stopwatch clock;
        ReadSnapshot snapshot = manager.OpenSnapshot();
        Result<SnapshotQueryResult> result =
            EvaluateSnapshotQuery(snapshot, probe);
        AVM_CHECK(result.ok())
            << "probe query failed: " << result.status().ToString();
        AVM_CHECK(result.value().epoch_id >= last_epoch)
            << "epoch went backwards on reader " << r;
        last_epoch = result.value().epoch_id;
        latencies[static_cast<size_t>(r)].push_back(clock.ElapsedSeconds());
      }
    });
  }
  control();
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  return Summarize(std::move(latencies));
}

void WriteJson(const std::string& path, const std::string& mode, int readers,
               int batches, const PhaseStats& quiesced,
               const PhaseStats& maintain, double maintain_wall_s,
               const EpochManager::RetirementStats& retire) {
  FILE* out = std::fopen(path.c_str(), "w");
  AVM_CHECK(out != nullptr) << "cannot open " << path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve_driver\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(out, "  \"readers\": %d,\n", readers);
  std::fprintf(out, "  \"batches\": %d,\n", batches);
  std::fprintf(out,
               "  \"quiesced\": {\"queries\": %llu, \"p50_s\": %.6e, "
               "\"p99_s\": %.6e, \"max_s\": %.6e},\n",
               static_cast<unsigned long long>(quiesced.queries),
               quiesced.p50_s, quiesced.p99_s, quiesced.max_s);
  std::fprintf(out,
               "  \"maintain\": {\"queries\": %llu, \"p50_s\": %.6e, "
               "\"p99_s\": %.6e, \"max_s\": %.6e, \"wall_s\": %.6e},\n",
               static_cast<unsigned long long>(maintain.queries),
               maintain.p50_s, maintain.p99_s, maintain.max_s,
               maintain_wall_s);
  std::fprintf(out, "  \"p99_ratio\": %.4f,\n",
               quiesced.p99_s > 0.0 ? maintain.p99_s / quiesced.p99_s : 0.0);
  std::fprintf(out,
               "  \"retirement\": {\"published\": %llu, \"retired\": %llu, "
               "\"lagged\": %llu, \"mean_lag_s\": %.6e, \"max_lag_s\": "
               "%.6e}\n",
               static_cast<unsigned long long>(retire.published),
               static_cast<unsigned long long>(retire.retired),
               static_cast<unsigned long long>(retire.lagged),
               retire.lagged > 0
                   ? retire.total_lag_seconds /
                         static_cast<double>(retire.lagged)
                   : 0.0,
               retire.max_lag_seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  bool smoke = false;
  int readers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--readers=", 0) == 0) {
      readers = std::max(1, std::atoi(arg.c_str() + 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=PATH] [--smoke] [--readers=N]\n",
                   argv[0]);
      return 2;
    }
  }

  ExperimentScale scale = FigureScale();
  const int batches = smoke ? 3 : scale.num_batches;
  const double quiesced_seconds = smoke ? 0.3 : 2.0;

  PtfFixture fixture = OrDie(PtfFixture::MakePtf25(scale), "build PTF-25");
  ViewMaintainer maintainer(fixture.view.get(), MaintenanceMethod::kReassign);
  EpochManager manager;
  maintainer.AttachEpochManager(&manager);

  // Batch generation happens off every measured clock.
  const std::vector<SparseArray> nights =
      OrDie(fixture.generator->MakeRealBatches(batches), "make batches");

  // Epoch 1: the initial materialization.
  std::vector<ViewPin> pins;
  pins.push_back(EpochManager::PinView(*fixture.view));
  manager.Publish(std::move(pins));

  // Fixed probe: the busiest eighth of the sky, all time slices — bounded so
  // a query is a realistic region read, not a full-view dump.
  const auto& dims = fixture.generator->schema().dims();
  const SnapshotQuery probe{
      "PTF25_view",
      {dims[0].lo, dims[1].lo, dims[2].lo},
      {dims[0].hi, dims[1].lo + (dims[1].hi - dims[1].lo) / 8,
       dims[2].lo + (dims[2].hi - dims[2].lo) / 8}};

  // Phase 1 — quiesced: serving with no concurrent maintenance.
  const PhaseStats quiesced =
      RunPhase(manager, probe, readers, [&] {
        Stopwatch clock;
        while (clock.ElapsedSeconds() < quiesced_seconds) {
          std::this_thread::yield();
        }
      });

  // Phase 2 — during maintenance: the same serving loop while every nightly
  // batch is maintained and published.
  Stopwatch maintain_clock;
  const PhaseStats maintain = RunPhase(manager, probe, readers, [&] {
    for (const SparseArray& night : nights) {
      const MaintenanceReport report =
          OrDie(maintainer.ApplyBatch(night), "apply batch");
      AVM_CHECK(report.published_epoch > 0) << "batch did not publish";
    }
  });
  const double maintain_wall_s = maintain_clock.ElapsedSeconds();

  // Served content of the final epoch must bit-match the maintained view.
  const SnapshotQueryResult last = OrDie(
      EvaluateSnapshotQuery(manager.OpenSnapshot(),
                            SnapshotQuery{"PTF25_view", {}, {}}),
      "final full-view query");
  AVM_CHECK(last.epoch_id == static_cast<uint64_t>(batches) + 1)
      << "expected one epoch per batch commit";
  const SparseArray truth =
      OrDie(fixture.view->GatherFinalized(), "gather finalized");
  AVM_CHECK(last.finalized.ContentEquals(truth, 0.0))
      << "served epoch diverged from the maintained view";

  const EpochManager::RetirementStats retire = manager.retirement();
  std::printf("%-10s %10s %12s %12s %12s\n", "phase", "queries", "p50 s",
              "p99 s", "max s");
  std::printf("%-10s %10llu %12.3e %12.3e %12.3e\n", "quiesced",
              static_cast<unsigned long long>(quiesced.queries),
              quiesced.p50_s, quiesced.p99_s, quiesced.max_s);
  std::printf("%-10s %10llu %12.3e %12.3e %12.3e\n", "maintain",
              static_cast<unsigned long long>(maintain.queries),
              maintain.p50_s, maintain.p99_s, maintain.max_s);
  std::printf(
      "p99 ratio %.2fx over %d batches (%.2fs wall); epochs published %llu, "
      "retired %llu, mean lag %.3es, max lag %.3es\n",
      quiesced.p99_s > 0.0 ? maintain.p99_s / quiesced.p99_s : 0.0, batches,
      maintain_wall_s, static_cast<unsigned long long>(retire.published),
      static_cast<unsigned long long>(retire.retired),
      retire.lagged > 0
          ? retire.total_lag_seconds / static_cast<double>(retire.lagged)
          : 0.0,
      retire.max_lag_seconds);
  WriteJson(out_path, smoke ? "smoke" : "full", readers, batches, quiesced,
            maintain, maintain_wall_s, retire);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) { return avm::bench::Main(argc, argv); }
