// Figure 10b: sensitivity to the number of batches — a fixed update
// workload is divided into k equal batches (k = 1, 2, 5, 10, 20) and the
// total maintenance time of the sequence is reported (PTF-25, real
// updates). Expected shape per the paper: a sweet spot at a moderate batch
// count; many tiny batches pay per-batch overhead, which reassign
// compensates best by converging to a good partitioning.

#include <algorithm>

#include "bench/bench_util.h"
#include "common/check.h"

namespace avm::bench {
namespace {

constexpr int kBatchCounts[] = {1, 2, 5, 10, 20};
constexpr uint64_t kTotalCells = 16000;

struct Row {
  int num_batches = 0;
  double seconds[3] = {0, 0, 0};
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

/// Splits one update workload into `k` equal batches in time order (the
/// acquisition order a pipeline would flush them in).
std::vector<SparseArray> SplitWorkload(const SparseArray& workload, int k) {
  struct Cell {
    CellCoord coord;
    std::vector<double> values;
  };
  std::vector<Cell> cells;
  cells.reserve(workload.NumCells());
  workload.ForEachCell(
      [&](std::span<const int64_t> coord, std::span<const double> values) {
        cells.push_back({CellCoord(coord.begin(), coord.end()),
                         std::vector<double>(values.begin(), values.end())});
      });
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.coord < b.coord; });
  std::vector<SparseArray> batches;
  const size_t per_batch = (cells.size() + static_cast<size_t>(k) - 1) /
                           static_cast<size_t>(k);
  for (int b = 0; b < k; ++b) {
    SparseArray batch(workload.schema());
    const size_t lo = static_cast<size_t>(b) * per_batch;
    const size_t hi = std::min(cells.size(), lo + per_batch);
    for (size_t i = lo; i < hi; ++i) {
      AVM_CHECK(batch.Set(cells[i].coord, cells[i].values).ok());
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void RunCase(::benchmark::State& state, int k, MaintenanceMethod method) {
  for (auto _ : state) {
    ExperimentScale scale = FigureScale();
    PtfFixture fixture =
        OrDie(PtfFixture::MakePtf25(scale), "build PTF-25 fixture");
    // One fixed workload: a multi-night spread window (drawn identically
    // for every k and method thanks to the deterministic generator).
    std::vector<SparseArray> nights = OrDie(
        fixture.generator->MakeSpreadBatches(4, 6, kTotalCells / 4),
        "draw workload");
    SparseArray workload(nights[0].schema());
    for (const auto& night : nights) {
      night.ForEachCell(
          [&](std::span<const int64_t> coord, std::span<const double> v) {
            AVM_CHECK(workload
                          .Set(CellCoord(coord.begin(), coord.end()), v)
                          .ok());
          });
    }
    ViewMaintainer maintainer(fixture.view.get(), method);
    double total = 0.0;
    for (const SparseArray& batch : SplitWorkload(workload, k)) {
      MaintenanceReport report =
          OrDie(maintainer.ApplyBatch(batch), "apply batch");
      total += report.maintenance_seconds;
    }
    state.counters["sim_total_s"] = total;

    auto& rows = Rows();
    auto it = std::find_if(rows.begin(), rows.end(),
                           [&](const Row& r) { return r.num_batches == k; });
    if (it == rows.end()) {
      rows.push_back({k, {0, 0, 0}});
      it = rows.end() - 1;
    }
    it->seconds[static_cast<int>(method)] = total;
  }
}

void RegisterAll() {
  for (int k : kBatchCounts) {
    for (MaintenanceMethod method :
         {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
          MaintenanceMethod::kReassign}) {
      const std::string name = "BM_Fig10b/batches:" + std::to_string(k) +
                               "/" +
                               std::string(MaintenanceMethodName(method));
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [k, method](::benchmark::State& state) {
            RunCase(state, k, method);
          })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Figure 10b: total maintenance time vs number of batches "
      "(fixed workload, PTF-25, simulated seconds) =====\n");
  std::printf("%-10s %13s %13s %13s\n", "#batches", "baseline",
              "differential", "reassign");
  std::sort(Rows().begin(), Rows().end(),
            [](const Row& a, const Row& b) {
              return a.num_batches < b.num_batches;
            });
  for (const auto& row : Rows()) {
    std::printf("%-10d %12.4fs %12.4fs %12.4fs\n", row.num_batches,
                row.seconds[0], row.seconds[1], row.seconds[2]);
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
