// Figure 10a: sensitivity to batch size — maintenance time for update
// batches of exponentially increasing size (the paper feeds batches of 50,
// 100, 200, 400, 800, 1600 chunks, in that order, to PTF-25 with real
// updates). We sweep the batch's cell count with the pointing window scaled
// alongside, so the chunk count grows the same way. Expected shape:
// maintenance time grows linearly with batch size; the gap between the
// heuristics and the baseline widens with larger batches; the optimization
// overhead stays <~1% of maintenance.

#include <cmath>

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

constexpr uint64_t kBatchCells[] = {400, 800, 1600, 3200, 6400, 12800};

struct Row {
  uint64_t cells;
  size_t chunks[3] = {0, 0, 0};
  double seconds[3] = {0, 0, 0};
  double opt_seconds[3] = {0, 0, 0};
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void RunMethod(::benchmark::State& state, MaintenanceMethod method) {
  for (auto _ : state) {
    ExperimentScale scale = FigureScale();
    PtfFixture fixture =
        OrDie(PtfFixture::MakePtf25(scale), "build PTF-25 fixture");
    ViewMaintainer maintainer(fixture.view.get(), method);
    double total = 0.0;
    for (size_t i = 0; i < std::size(kBatchCells); ++i) {
      const uint64_t cells = kBatchCells[i];
      // Window area grows with the batch so chunk density stays constant.
      const int64_t spread = std::max<int64_t>(
          2, static_cast<int64_t>(std::lround(
                 2.0 * std::sqrt(static_cast<double>(cells) / 400.0))));
      std::vector<SparseArray> batches =
          OrDie(fixture.generator->MakeSpreadBatches(1, spread, cells),
                "draw batch");
      MaintenanceReport report =
          OrDie(maintainer.ApplyBatch(batches[0]), "apply batch");
      total += report.maintenance_seconds;

      auto& rows = Rows();
      if (rows.size() <= i) rows.push_back({cells, {0, 0, 0}, {0, 0, 0},
                                            {0, 0, 0}});
      rows[i].chunks[static_cast<int>(method)] = report.num_delta_chunks;
      rows[i].seconds[static_cast<int>(method)] = report.maintenance_seconds;
      rows[i].opt_seconds[static_cast<int>(method)] =
          report.optimization_seconds();
    }
    state.counters["sim_total_s"] = total;
  }
}

void RegisterAll() {
  for (MaintenanceMethod method :
       {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
        MaintenanceMethod::kReassign}) {
    const std::string name =
        "BM_Fig10a/" + std::string(MaintenanceMethodName(method));
    ::benchmark::RegisterBenchmark(
        name.c_str(),
        [method](::benchmark::State& state) { RunMethod(state, method); })
        ->Unit(::benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Figure 10a: maintenance time vs batch size "
      "(PTF-25, simulated seconds) =====\n");
  std::printf("%-10s %-8s %13s %13s %13s\n", "cells", "chunks", "baseline",
              "differential", "reassign");
  for (const auto& row : Rows()) {
    std::printf("%-10llu %-8zu %12.4fs %12.4fs %12.4fs\n",
                static_cast<unsigned long long>(row.cells), row.chunks[0],
                row.seconds[0], row.seconds[1], row.seconds[2]);
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
