// Figure 10c: sensitivity to update spread — 10 batches of a fixed cell
// count are sampled inside a spread x spread window of (ra, dec) chunks
// (the paper uses spreads 10, 20, 80 over 500-chunk batches; scaled to our
// grid). Larger spread = less concentrated updates = less sharing, hence
// longer maintenance; reassign should degrade the least in absolute terms.

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

constexpr int64_t kSpreads[] = {4, 8, 16};
constexpr uint64_t kCellsPerBatch = 4000;
constexpr int kNumBatches = 10;

struct Row {
  int64_t spread = 0;
  double seconds[3] = {0, 0, 0};
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void RunCase(::benchmark::State& state, int64_t spread,
             MaintenanceMethod method) {
  for (auto _ : state) {
    ExperimentScale scale = FigureScale();
    PtfFixture fixture =
        OrDie(PtfFixture::MakePtf25(scale), "build PTF-25 fixture");
    std::vector<SparseArray> batches =
        OrDie(fixture.generator->MakeSpreadBatches(kNumBatches, spread,
                                                   kCellsPerBatch),
              "draw batches");
    ViewMaintainer maintainer(fixture.view.get(), method);
    double total = 0.0;
    for (const SparseArray& batch : batches) {
      total += OrDie(maintainer.ApplyBatch(batch), "apply batch")
                   .maintenance_seconds;
    }
    state.counters["sim_total_s"] = total;

    auto& rows = Rows();
    auto it = std::find_if(rows.begin(), rows.end(),
                           [&](const Row& r) { return r.spread == spread; });
    if (it == rows.end()) {
      rows.push_back({spread, {0, 0, 0}});
      it = rows.end() - 1;
    }
    it->seconds[static_cast<int>(method)] = total;
  }
}

void RegisterAll() {
  for (int64_t spread : kSpreads) {
    for (MaintenanceMethod method :
         {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
          MaintenanceMethod::kReassign}) {
      const std::string name = "BM_Fig10c/spread:" + std::to_string(spread) +
                               "/" +
                               std::string(MaintenanceMethodName(method));
      ::benchmark::RegisterBenchmark(
          name.c_str(),
          [spread, method](::benchmark::State& state) {
            RunCase(state, spread, method);
          })
          ->Unit(::benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Figure 10c: total maintenance time vs update spread "
      "(10 batches x %llu cells, PTF-25, simulated seconds) =====\n",
      static_cast<unsigned long long>(kCellsPerBatch));
  std::printf("%-10s %13s %13s %13s\n", "spread", "baseline", "differential",
              "reassign");
  for (const auto& row : Rows()) {
    std::printf("%-10lld %12.4fs %12.4fs %12.4fs\n",
                static_cast<long long>(row.spread), row.seconds[0],
                row.seconds[1], row.seconds[2]);
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
