// Figure 6: answering similarity-join queries with a materialized view
// (differential ∆-shape evaluation) versus a complete similarity join, on
// the PTF dataset, for the paper's four view<-query shape pairs:
//
//     L1(3) <- L∞(2),  L2(2) <- L∞(2),  L∞(1) <- L1(1),  L∞(1) <- L∞(2)
//
// Shape radii are in *chunks* of (ra, dec) — the granularity the paper's
// ∆-shape diagrams (Figure 4) operate at: maintenance, planning, and the
// cost model are all chunk-granular, so a sub-chunk ∆ would be invisible
// to them. The winner follows the |∆|/|query| ratio (e.g. 4/9 for
// L∞(1) <- L1(1) favors the view, 16/9 for L∞(1) <- L∞(2) favors the
// complete join) — and the analytical cost model of Section 5 must pick
// the faster alternative in each case.

#include <optional>

#include "bench/bench_util.h"
#include "query/query_planner.h"

namespace avm::bench {
namespace {

struct QueryCase {
  const char* label;          // "L∞(1) <- L1(1)"
  const char* view_kind;      // which materialized view to use
  Shape query_spatial;
};

struct QueryRow {
  std::string label;
  double complete_s = 0;
  double view_s = 0;
  double ratio = 0;
  std::string chosen;
};

std::vector<QueryRow>& Rows() {
  static auto* rows = new std::vector<QueryRow>();
  return *rows;
}

/// Builds a PTF experiment whose view uses the given (chunk-scale) spatial
/// shape at zero time offset — a same-exposure cross-match view. View and
/// queries share the zero time offset, so the ∆ shape is purely spatial,
/// like the paper's (ra, dec) figures.
struct QueryFixture {
  PreparedExperiment experiment;

  static Result<QueryFixture> Make(const Shape& view_spatial) {
    ExperimentScale scale = FigureScale();
    scale.num_batches = 0;
    QueryFixture fixture{{}};
    AVM_ASSIGN_OR_RETURN(PtfGenerator gen, [&]() {
      PtfOptions ptf = scale.ptf;
      ptf.seed ^= scale.seed;
      return PtfGenerator::Create(ptf);
    }());
    fixture.experiment.catalog = std::make_unique<Catalog>();
    fixture.experiment.cluster =
        std::make_unique<Cluster>(scale.num_workers, scale.cost_model);
    AVM_ASSIGN_OR_RETURN(
        DistributedArray base,
        DistributedArray::Create(gen.schema(), MakeRangePlacement(1),
                                 fixture.experiment.catalog.get(),
                                 fixture.experiment.cluster.get()));
    AVM_RETURN_IF_ERROR(base.Ingest(gen.base()));
    ViewDefinition def;
    def.view_name = "PTF_query_view";
    def.left_array = "PTF";
    def.right_array = "PTF";
    def.mapping = DimMapping::Identity(3);
    def.shape = view_spatial;
    def.aggregates = {{AggregateFunction::kCount, 0, "cnt"}};
    AVM_ASSIGN_OR_RETURN(
        MaterializedView view,
        CreateMaterializedView(std::move(def), MakeRangePlacement(1),
                               fixture.experiment.catalog.get(),
                               fixture.experiment.cluster.get()));
    fixture.experiment.view =
        std::make_unique<MaterializedView>(std::move(view));
    fixture.experiment.cluster->ResetClocks();
    return fixture;
  }
};

void RunCase(::benchmark::State& state, const char* label,
             const Shape& view_spatial, const Shape& query_spatial) {
  for (auto _ : state) {
    QueryFixture fixture =
        OrDie(QueryFixture::Make(view_spatial), "build query fixture");
    const Shape& query = query_spatial;
    SimilarityQueryPlanner planner(fixture.experiment.view.get());
    auto complete = OrDie(
        planner.Execute(query, QueryStrategy::kCompleteJoin), "complete");
    auto with_view = OrDie(
        planner.Execute(query, QueryStrategy::kDifferentialOnView), "view");
    OrDie(complete.states.ContentEquals(with_view.states, 1e-9)
              ? Status::OK()
              : Status::Internal("strategies disagree on " +
                                 std::string(label)),
          "answer equivalence");
    state.counters["complete_s"] = complete.sim_seconds;
    state.counters["view_s"] = with_view.sim_seconds;
    state.counters["delta_ratio"] = with_view.estimate.DeltaRatio();
    Rows().push_back({label, complete.sim_seconds, with_view.sim_seconds,
                      with_view.estimate.DeltaRatio(),
                      std::string(QueryStrategyName(
                          with_view.estimate.chosen))});
  }
}

void RegisterAll() {
  // Radii in chunks of (ra, dec): weights = the chunk extents (100, 50).
  static const std::vector<double> kW = {100.0, 50.0};
  static const Shape kL1_1 =
      Shape::WeightedBall(3, Shape::Norm::kL1, 1.0, kW, {1, 2});
  static const Shape kL1_3 =
      Shape::WeightedBall(3, Shape::Norm::kL1, 3.0, kW, {1, 2});
  static const Shape kL2_2 =
      Shape::WeightedBall(3, Shape::Norm::kL2, 2.0, kW, {1, 2});
  static const Shape kLinf_1 =
      Shape::WeightedBall(3, Shape::Norm::kLinf, 1.0, kW, {1, 2});
  static const Shape kLinf_2 =
      Shape::WeightedBall(3, Shape::Norm::kLinf, 2.0, kW, {1, 2});
  struct Entry {
    const char* name;
    const char* label;
    const Shape* view;
    const Shape* query;
  };
  static const Entry kEntries[] = {
      {"BM_Fig6/L1_3_from_Linf_2", "L1(3) <- L inf(2)", &kLinf_2, &kL1_3},
      {"BM_Fig6/L2_2_from_Linf_2", "L2(2) <- L inf(2)", &kLinf_2, &kL2_2},
      {"BM_Fig6/Linf_1_from_L1_1", "L inf(1) <- L1(1)", &kL1_1, &kLinf_1},
      {"BM_Fig6/Linf_1_from_Linf_2", "L inf(1) <- L inf(2)", &kLinf_2,
       &kLinf_1},
  };
  for (const Entry& entry : kEntries) {
    ::benchmark::RegisterBenchmark(
        entry.name,
        [&entry](::benchmark::State& state) {
          RunCase(state, entry.label, *entry.view, *entry.query);
        })
        ->Unit(::benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Figure 6: differential query on the view vs complete "
      "similarity join (simulated seconds) =====\n");
  std::printf("%-22s %12s %12s %8s   %s\n", "query <- view", "complete",
              "view", "|d|/|q|", "cost model picks");
  for (const auto& row : Rows()) {
    std::printf("%-22s %11.4fs %11.4fs %8.2f   %s\n", row.label.c_str(),
                row.complete_s, row.view_s, row.ratio, row.chosen.c_str());
  }
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  ::benchmark::Shutdown();
  return 0;
}
