// Microbenchmark for copy-free chunk movement: times the three store-level
// data-movement operations maintenance leans on — a point-to-point transfer,
// replication to every worker, and the delta-becomes-base fold — with chunk
// aliasing on (refcount-bump handles, the shipping configuration) and off
// (deep copies, the pre-COW behavior, kept switchable in ChunkStore for
// exactly this A/B). Both modes run in one process on one machine, so the
// reported speedup isolates the handle design. Also exercises the ChunkPool
// acquire/release loop against fresh allocation.
//
// Emits machine-readable results to BENCH_transfer.json (or --out=PATH);
// --smoke shrinks the chunk and the timing budget for CI, where the
// bench-smoke gate enforces aliased >= 5x deep-copy on transfer/replicate.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_pool.h"
#include "array/coords.h"
#include "cluster/cluster.h"
#include "common/check.h"
#include "common/rng.h"
#include "storage/chunk_store.h"
#include "telemetry/stopwatch.h"

namespace avm {
namespace {

constexpr ArrayId kArray = 0;
constexpr ArrayId kFoldTarget = 1;
constexpr ChunkId kChunk = 0;

/// A dense 2-d chunk with one attribute and `cells` rows (offsets 0..n-1).
Chunk MakeChunk(size_t cells) {
  Chunk chunk(/*num_dims=*/2, /*num_attrs=*/1);
  chunk.Reserve(cells);
  Rng rng(0xBEEF ^ cells);
  const int64_t extent = 1 << 12;
  CellCoord coord(2);
  for (size_t i = 0; i < cells; ++i) {
    coord[0] = static_cast<int64_t>(i) / extent;
    coord[1] = static_cast<int64_t>(i) % extent;
    const double v = rng.UniformDouble();
    chunk.UpsertCell(i, coord, {&v, 1});
  }
  return chunk;
}

/// Times `run` with calibrated repetitions; returns seconds per invocation
/// (best of three trials).
template <typename Fn>
double TimePerRun(Fn&& run, double target_seconds) {
  Stopwatch calibrate;
  run();
  const double once = calibrate.ElapsedSeconds();
  size_t reps = 1;
  if (once < target_seconds) {
    reps = static_cast<size_t>(target_seconds / (once + 1e-9)) + 1;
    if (reps > 100000) reps = 100000;
  }
  double best = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    Stopwatch timer;
    for (size_t i = 0; i < reps; ++i) run();
    const double per_run = timer.ElapsedSeconds() / static_cast<double>(reps);
    if (per_run < best) best = per_run;
  }
  return best;
}

struct OpResult {
  std::string op;
  uint64_t bytes_moved = 0;  // logical bytes one invocation moves
  double aliased_s = 0.0;
  double deep_s = 0.0;
  double aliased_bytes_per_sec = 0.0;
  double deep_bytes_per_sec = 0.0;
  double speedup = 0.0;
};

/// Runs `op` (one data-movement invocation, self-cleaning so it can repeat)
/// under both aliasing modes.
template <typename Fn>
OpResult MeasureOp(const std::string& name, uint64_t bytes_moved, Fn&& op,
                   double target_seconds) {
  OpResult result;
  result.op = name;
  result.bytes_moved = bytes_moved;
  SetChunkAliasingEnabled(true);
  result.aliased_s = TimePerRun(op, target_seconds);
  SetChunkAliasingEnabled(false);
  result.deep_s = TimePerRun(op, target_seconds);
  SetChunkAliasingEnabled(true);
  const double bytes = static_cast<double>(bytes_moved);
  result.aliased_bytes_per_sec = bytes / result.aliased_s;
  result.deep_bytes_per_sec = bytes / result.deep_s;
  result.speedup = result.deep_s / result.aliased_s;
  return result;
}

/// ChunkPool A/B: building a fragment-sized chunk from pooled capacity vs a
/// fresh allocation each time. Not mode-switched (the pool is orthogonal to
/// aliasing); reported alongside so one JSON covers both PR-5 mechanisms.
struct PoolResult {
  double pooled_s = 0.0;
  double fresh_s = 0.0;
  double speedup = 0.0;
};

PoolResult MeasurePool(size_t cells, double target_seconds) {
  const int64_t extent = 1 << 12;
  CellCoord coord(2);
  const auto fill = [&](Chunk* chunk) {
    chunk->Reserve(cells);
    for (size_t i = 0; i < cells; ++i) {
      coord[0] = static_cast<int64_t>(i) / extent;
      coord[1] = static_cast<int64_t>(i) % extent;
      const double v = 1.0;
      chunk->UpsertCell(i, coord, {&v, 1});
    }
  };
  PoolResult result;
  // Warm the pool so the steady state (capacity parked from a previous
  // batch) is what gets measured.
  ChunkPool::Release(MakeChunk(cells));
  result.pooled_s = TimePerRun(
      [&] {
        Chunk chunk = ChunkPool::Acquire(2, 1);
        fill(&chunk);
        ChunkPool::Release(std::move(chunk));
      },
      target_seconds);
  result.fresh_s = TimePerRun(
      [&] {
        Chunk chunk(2, 1);
        fill(&chunk);
      },
      target_seconds);
  ChunkPool::DrainForTesting();
  result.speedup = result.fresh_s / result.pooled_s;
  return result;
}

void WriteJson(const std::string& path, const std::string& mode, size_t cells,
               uint64_t chunk_bytes, const std::vector<OpResult>& results,
               const PoolResult& pool) {
  FILE* out = std::fopen(path.c_str(), "w");
  AVM_CHECK(out != nullptr) << "cannot open " << path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"microbench_transfer\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", mode.c_str());
  std::fprintf(out, "  \"chunk_cells\": %zu,\n", cells);
  std::fprintf(out, "  \"chunk_bytes\": %llu,\n",
               static_cast<unsigned long long>(chunk_bytes));
  std::fprintf(out,
               "  \"pool\": {\"pooled_s\": %.6e, \"fresh_s\": %.6e, "
               "\"speedup\": %.4f},\n",
               pool.pooled_s, pool.fresh_s, pool.speedup);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const OpResult& r = results[i];
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"bytes_moved\": %llu, "
                 "\"aliased_s\": %.6e, \"deep_s\": %.6e, "
                 "\"aliased_bytes_per_sec\": %.6e, "
                 "\"deep_bytes_per_sec\": %.6e, \"speedup\": %.4f}%s\n",
                 r.op.c_str(), static_cast<unsigned long long>(r.bytes_moved),
                 r.aliased_s, r.deep_s, r.aliased_bytes_per_sec,
                 r.deep_bytes_per_sec, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_transfer.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const size_t cells = smoke ? 4096 : 65536;
  const double target_seconds = smoke ? 0.01 : 0.05;
  const int num_workers = 8;

  Cluster cluster(num_workers);
  const uint64_t chunk_bytes =
      cluster.store(0).Put(kArray, kChunk, MakeChunk(cells));

  std::vector<OpResult> results;

  // transfer: one point-to-point move (the step-1 co-location primitive).
  results.push_back(MeasureOp(
      "transfer", chunk_bytes,
      [&] {
        AVM_CHECK(cluster.TransferChunk(kArray, kChunk, 0, 1).ok());
        cluster.store(1).Erase(kArray, kChunk);
      },
      target_seconds));

  // replicate: fan the chunk out to every other worker (join co-location of
  // a hot delta chunk).
  results.push_back(MeasureOp(
      "replicate", chunk_bytes * static_cast<uint64_t>(num_workers - 1),
      [&] {
        for (NodeId n = 1; n < num_workers; ++n) {
          AVM_CHECK(cluster.TransferChunk(kArray, kChunk, 0, n).ok());
        }
        for (NodeId n = 1; n < num_workers; ++n) {
          cluster.store(n).Erase(kArray, kChunk);
        }
      },
      target_seconds));

  // fold: the executor's delta-becomes-base path — the store's own handle is
  // re-put under the base array id.
  results.push_back(MeasureOp(
      "fold", chunk_bytes,
      [&] {
        ChunkHandle delta = cluster.store(0).GetHandle(kArray, kChunk);
        AVM_CHECK(delta != nullptr);
        cluster.store(0).PutHandle(kFoldTarget, kChunk, std::move(delta));
        cluster.store(0).Erase(kFoldTarget, kChunk);
      },
      target_seconds));

  const PoolResult pool = MeasurePool(cells / 4, target_seconds);

  std::printf("%-10s %14s %12s %12s %10s\n", "op", "bytes", "aliased s",
              "deep s", "speedup");
  for (const OpResult& r : results) {
    std::printf("%-10s %14llu %12.3e %12.3e %9.1fx\n", r.op.c_str(),
                static_cast<unsigned long long>(r.bytes_moved), r.aliased_s,
                r.deep_s, r.speedup);
  }
  std::printf("pool acquire+fill vs fresh: %.3e s vs %.3e s (%.2fx)\n",
              pool.pooled_s, pool.fresh_s, pool.speedup);
  WriteJson(out_path, smoke ? "smoke" : "full", cells, chunk_bytes, results,
            pool);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace avm

int main(int argc, char** argv) { return avm::Main(argc, argv); }
