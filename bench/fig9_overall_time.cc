// Figure 9 (Appendix C.1): overall execution time — optimization plus view
// maintenance — summed over the whole 10-batch sequence, per dataset, batch
// regime, and method. Expected shape per the paper: the optimization
// overhead is marginal against the maintenance reduction it buys; reassign's
// gain is maximized on correlated batches and it beats differential even
// with the extra planning stages included.

#include "bench/bench_util.h"

namespace avm::bench {
namespace {

struct OverallRow {
  std::string dataset;
  std::string regime;
  double opt[3] = {0, 0, 0};
  double maintenance[3] = {0, 0, 0};
};

std::vector<OverallRow>& Rows() {
  static auto* rows = new std::vector<OverallRow>();
  return *rows;
}

void RunCase(::benchmark::State& state, DatasetKind kind, BatchRegime regime,
             MaintenanceMethod method) {
  for (auto _ : state) {
    PreparedExperiment experiment = OrDie(
        PrepareExperiment(kind, regime, FigureScale()), "prepare experiment");
    BatchSeries series =
        OrDie(RunMaintenanceSeries(&experiment, method, PlannerOptions()),
              "maintenance series");
    const double opt = series.TotalOptimizationSeconds();
    const double maintenance = series.TotalMaintenanceSeconds();
    state.counters["overall_s"] = opt + maintenance;
    state.counters["opt_s"] = opt;
    state.counters["maintenance_s"] = maintenance;
    state.counters["wall_exec_s"] = series.TotalExecutionWallSeconds();
    state.counters["threads"] = static_cast<double>(BenchThreads());
    state.counters["peak_rss_bytes"] = static_cast<double>(PeakRssBytes());

    auto& rows = Rows();
    const std::string dataset(DatasetKindName(kind));
    const std::string regime_name(BatchRegimeName(regime));
    auto it = std::find_if(rows.begin(), rows.end(), [&](const OverallRow& r) {
      return r.dataset == dataset && r.regime == regime_name;
    });
    if (it == rows.end()) {
      rows.push_back({dataset, regime_name, {0, 0, 0}, {0, 0, 0}});
      it = rows.end() - 1;
    }
    it->opt[static_cast<int>(method)] = opt;
    it->maintenance[static_cast<int>(method)] = maintenance;
  }
}

void RegisterAll() {
  for (DatasetKind kind :
       {DatasetKind::kPtf5, DatasetKind::kPtf25, DatasetKind::kGeo}) {
    for (BatchRegime regime : RegimesFor(kind)) {
      for (MaintenanceMethod method :
           {MaintenanceMethod::kBaseline, MaintenanceMethod::kDifferential,
            MaintenanceMethod::kReassign}) {
        const std::string name =
            "BM_Fig9/" + std::string(DatasetKindName(kind)) + "/" +
            std::string(BatchRegimeName(regime)) + "/" +
            std::string(MaintenanceMethodName(method));
        ::benchmark::RegisterBenchmark(
            name.c_str(),
            [kind, regime, method](::benchmark::State& state) {
              RunCase(state, kind, regime, method);
            })
            ->Unit(::benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

void PrintPaperTable() {
  std::printf(
      "\n===== Figure 9: overall time over 10 batches "
      "(optimization + simulated maintenance, seconds) =====\n");
  std::printf("%-10s %-12s %15s %15s %15s\n", "dataset", "batches",
              "baseline", "differential", "reassign");
  for (const auto& row : Rows()) {
    std::printf("%-10s %-12s", row.dataset.c_str(), row.regime.c_str());
    for (int m = 0; m < 3; ++m) {
      std::printf(" %7.4f+%6.4fs", row.maintenance[m], row.opt[m]);
    }
    std::printf("\n");
  }
  std::printf("(each cell: maintenance + optimization)\n");
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0));
}

}  // namespace
}  // namespace avm::bench

int main(int argc, char** argv) {
  avm::bench::ParseThreadsFlag(&argc, argv);
  avm::bench::ParseTelemetryFlags(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  avm::bench::RegisterAll();
  ::benchmark::RunSpecifiedBenchmarks();
  avm::bench::PrintPaperTable();
  avm::bench::FinishTelemetry();
  ::benchmark::Shutdown();
  return 0;
}
