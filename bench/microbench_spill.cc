// Microbenchmark for the out-of-core buffer manager: builds a chunk catalog
// several times larger than the resident-set budget inside one ChunkStore
// bound to a BufferManager, then measures the three access regimes the
// design cares about — ingest under eviction pressure, a cold sequential
// scan (every access faults a spilled chunk back in), and a hot loop over a
// working set that fits in the budget (the clock hand should keep it
// resident, so steady-state reloads stay near zero).
//
// The headline number is peak host RSS: the catalog is >= 4x the budget, so
// staying under budget + slack is only possible if eviction actually
// bounds residency. Emits machine-readable results to BENCH_spill.json (or
// --out=PATH); --smoke shrinks the catalog for CI, where the spill-smoke
// gate enforces the RSS bound and the hot-loop hit rate.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "array/chunk.h"
#include "array/coords.h"
#include "bench/bench_util.h"
#include "buffer/buffer_manager.h"
#include "common/check.h"
#include "common/rng.h"
#include "storage/chunk_store.h"
#include "telemetry/metrics.h"
#include "telemetry/stopwatch.h"

namespace avm {
namespace {

constexpr ArrayId kArray = 0;

/// A dense-coordinate 2-d chunk with one attribute and `cells` rows.
Chunk MakeChunk(size_t cells, uint64_t seed) {
  Chunk chunk(/*num_dims=*/2, /*num_attrs=*/1);
  chunk.Reserve(cells);
  Rng rng(0x5917ULL ^ seed);
  const int64_t extent = 1 << 12;
  CellCoord coord(2);
  for (size_t i = 0; i < cells; ++i) {
    coord[0] = static_cast<int64_t>(i) / extent;
    coord[1] = static_cast<int64_t>(i) % extent;
    const double v = rng.UniformDouble();
    chunk.UpsertCell(i, coord, {&v, 1});
  }
  return chunk;
}

struct PhaseCounters {
  uint64_t evictions = 0;
  uint64_t reloads = 0;
  uint64_t bytes_spilled = 0;
  uint64_t bytes_reloaded = 0;
};

PhaseCounters DeltaSince(const MetricsSnapshot& before) {
  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DeltaSince(before);
  PhaseCounters c;
  c.evictions = delta.counter(CounterId::kBufferEvictions);
  c.reloads = delta.counter(CounterId::kBufferReloads);
  c.bytes_spilled = delta.counter(CounterId::kBufferBytesSpilled);
  c.bytes_reloaded = delta.counter(CounterId::kBufferBytesReloaded);
  return c;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_spill.json";
  bool smoke = false;
  uint64_t budget_mb = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--budget-mb=", 0) == 0) {
      budget_mb = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH] [--smoke] [--budget-mb=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (budget_mb == 0) budget_mb = smoke ? 32 : 64;

  // Counters (reloads, spilled bytes) drive the reported rates, so the
  // whole bench runs with telemetry on — the overhead is per-spill, not
  // per-cell, and identical across phases.
  EnableTelemetry();

  const uint64_t baseline_rss = bench::PeakRssBytes();
  const uint64_t budget = budget_mb << 20;
  const size_t cells = smoke ? 16384 : 32768;

  BufferOptions options;
  options.budget_bytes = budget;
  options.spill_dir = "bench_spill_tmp";
  // Declared store-first: the manager's destructor detaches the store, so
  // it must run before the store's (which CHECKs no backend is attached).
  ChunkStore store;
  BufferManager manager(options);
  manager.Register(&store);

  // --- ingest: grow the catalog to >= 4.25x the budget. Each chunk is
  // built, measured, and handed to the store before the next one exists, so
  // residency is always store-side and under the manager's control.
  uint64_t catalog_physical = 0;
  size_t num_chunks = 0;
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Stopwatch ingest_clock;
  while (catalog_physical < budget / 4 * 17) {  // 4.25x
    Chunk chunk = MakeChunk(cells, num_chunks);
    catalog_physical += chunk.PhysicalSizeBytes();
    store.Put(kArray, static_cast<ChunkId>(num_chunks), std::move(chunk));
    ++num_chunks;
  }
  const double ingest_s = ingest_clock.ElapsedSeconds();
  manager.Rebalance();
  const PhaseCounters ingest = DeltaSince(before);
  const BufferManager::Stats after_ingest = manager.GetStats();
  AVM_CHECK(catalog_physical >= 4 * budget)
      << "catalog " << catalog_physical << " under 4x budget " << budget;
  AVM_CHECK(after_ingest.resident_bytes <= budget)
      << "post-ingest residency " << after_ingest.resident_bytes
      << " exceeds budget " << budget;

  // --- scan: touch every chunk once in id order. With the catalog 4x the
  // budget, most accesses fault in from the spill file and evict someone
  // else; the reload rate is the spill path's end-to-end bandwidth.
  before = MetricsRegistry::Global().Snapshot();
  Stopwatch scan_clock;
  uint64_t scanned_bytes = 0;
  for (size_t i = 0; i < num_chunks; ++i) {
    const ChunkHandle h = store.GetHandle(kArray, static_cast<ChunkId>(i));
    AVM_CHECK(h != nullptr);
    scanned_bytes += h->PhysicalSizeBytes();
  }
  const double scan_s = scan_clock.ElapsedSeconds();
  const PhaseCounters scan = DeltaSince(before);

  // --- hot loop: a working set of ~budget/2 bytes, accessed round-robin.
  // Round 1 faults it in; later rounds should find it resident (the clock
  // promotes stamped slots), so steady-state reloads measure how well
  // second-chance protects the hot set.
  size_t hot_chunks = 0;
  {
    uint64_t hot_bytes = 0;
    while (hot_chunks < num_chunks && hot_bytes < budget / 2) {
      uint64_t bytes = 0;
      if (!store.PeekResidentBytes(kArray, static_cast<ChunkId>(hot_chunks),
                                   &bytes)) {
        bytes = catalog_physical / num_chunks;  // spilled: estimate
      }
      hot_bytes += bytes;
      ++hot_chunks;
    }
  }
  const int kHotRounds = 8;
  // Warmup round, excluded from the steady-state counters.
  for (size_t i = 0; i < hot_chunks; ++i) {
    AVM_CHECK(store.GetHandle(kArray, static_cast<ChunkId>(i)) != nullptr);
  }
  before = MetricsRegistry::Global().Snapshot();
  Stopwatch hot_clock;
  for (int round = 0; round < kHotRounds; ++round) {
    for (size_t i = 0; i < hot_chunks; ++i) {
      AVM_CHECK(store.GetHandle(kArray, static_cast<ChunkId>(i)) != nullptr);
    }
  }
  const double hot_s = hot_clock.ElapsedSeconds();
  const PhaseCounters hot = DeltaSince(before);
  const uint64_t hot_accesses =
      static_cast<uint64_t>(kHotRounds) * static_cast<uint64_t>(hot_chunks);
  const double hot_hit_rate =
      1.0 - static_cast<double>(hot.reloads) / static_cast<double>(hot_accesses);

  const BufferManager::Stats stats = manager.GetStats();
  const uint64_t peak_rss = bench::PeakRssBytes();
  const ChunkStore::FormatResidency residency = store.ResidencyByFormat();
  AVM_CHECK(residency.spilled_chunks + residency.sparse_chunks +
                residency.dense_chunks ==
            num_chunks);

  std::printf("budget %llu MiB, catalog %.1f MiB in %zu chunks (%.2fx)\n",
              static_cast<unsigned long long>(budget_mb),
              catalog_physical / 1048576.0, num_chunks,
              static_cast<double>(catalog_physical) /
                  static_cast<double>(budget));
  std::printf("ingest  %8.3f s  %6llu evictions\n", ingest_s,
              static_cast<unsigned long long>(ingest.evictions));
  std::printf("scan    %8.3f s  %6llu reloads  %.1f MiB/s reload bw\n",
              scan_s, static_cast<unsigned long long>(scan.reloads),
              scan.bytes_reloaded / 1048576.0 / scan_s);
  std::printf("hot     %8.3f s  %6llu reloads over %llu accesses "
              "(hit rate %.3f)\n",
              hot_s, static_cast<unsigned long long>(hot.reloads),
              static_cast<unsigned long long>(hot_accesses), hot_hit_rate);
  std::printf("peak rss %.1f MiB (baseline %.1f MiB), resident %.1f MiB, "
              "disk %.1f MiB\n",
              peak_rss / 1048576.0, baseline_rss / 1048576.0,
              stats.resident_bytes / 1048576.0, stats.disk_bytes / 1048576.0);

  FILE* out = std::fopen(out_path.c_str(), "w");
  AVM_CHECK(out != nullptr) << "cannot open " << out_path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"microbench_spill\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(out, "  \"budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(budget));
  std::fprintf(out, "  \"catalog_bytes\": %llu,\n",
               static_cast<unsigned long long>(catalog_physical));
  std::fprintf(out, "  \"num_chunks\": %zu,\n", num_chunks);
  std::fprintf(out, "  \"catalog_over_budget\": %.3f,\n",
               static_cast<double>(catalog_physical) /
                   static_cast<double>(budget));
  std::fprintf(out, "  \"baseline_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(baseline_rss));
  std::fprintf(out, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(peak_rss));
  std::fprintf(out, "  \"resident_bytes\": %llu,\n",
               static_cast<unsigned long long>(stats.resident_bytes));
  std::fprintf(out, "  \"disk_bytes\": %llu,\n",
               static_cast<unsigned long long>(stats.disk_bytes));
  std::fprintf(out, "  \"spilled_chunks\": %zu,\n", residency.spilled_chunks);
  std::fprintf(out, "  \"spilled_bytes\": %llu,\n",
               static_cast<unsigned long long>(residency.spilled_bytes));
  std::fprintf(out,
               "  \"ingest\": {\"seconds\": %.6e, \"evictions\": %llu, "
               "\"bytes_spilled\": %llu},\n",
               ingest_s, static_cast<unsigned long long>(ingest.evictions),
               static_cast<unsigned long long>(ingest.bytes_spilled));
  std::fprintf(out,
               "  \"scan\": {\"seconds\": %.6e, \"reloads\": %llu, "
               "\"bytes_reloaded\": %llu, \"scanned_bytes\": %llu, "
               "\"reload_bytes_per_sec\": %.6e},\n",
               scan_s, static_cast<unsigned long long>(scan.reloads),
               static_cast<unsigned long long>(scan.bytes_reloaded),
               static_cast<unsigned long long>(scanned_bytes),
               scan.bytes_reloaded / scan_s);
  std::fprintf(out,
               "  \"hot\": {\"seconds\": %.6e, \"rounds\": %d, "
               "\"working_set_chunks\": %zu, \"accesses\": %llu, "
               "\"reloads\": %llu, \"hit_rate\": %.4f}\n",
               hot_s, kHotRounds, hot_chunks,
               static_cast<unsigned long long>(hot_accesses),
               static_cast<unsigned long long>(hot.reloads), hot_hit_rate);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  // Drop the catalog before the manager detaches: detaching faults every
  // spilled chunk back in, which would rehydrate 4x the budget at exit.
  store.EraseArray(kArray);
  return 0;
}

}  // namespace
}  // namespace avm

int main(int argc, char** argv) { return avm::Main(argc, argv); }
