file(REMOVE_RECURSE
  "CMakeFiles/avm_cluster.dir/catalog.cc.o"
  "CMakeFiles/avm_cluster.dir/catalog.cc.o.d"
  "CMakeFiles/avm_cluster.dir/cluster.cc.o"
  "CMakeFiles/avm_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/avm_cluster.dir/distributed_array.cc.o"
  "CMakeFiles/avm_cluster.dir/distributed_array.cc.o.d"
  "CMakeFiles/avm_cluster.dir/placement.cc.o"
  "CMakeFiles/avm_cluster.dir/placement.cc.o.d"
  "libavm_cluster.a"
  "libavm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
