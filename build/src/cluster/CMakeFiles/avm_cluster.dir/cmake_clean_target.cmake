file(REMOVE_RECURSE
  "libavm_cluster.a"
)
