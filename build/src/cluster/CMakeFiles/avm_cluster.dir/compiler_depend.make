# Empty compiler generated dependencies file for avm_cluster.
# This may be replaced when dependencies are built.
