# Empty compiler generated dependencies file for avm_query.
# This may be replaced when dependencies are built.
