file(REMOVE_RECURSE
  "libavm_query.a"
)
