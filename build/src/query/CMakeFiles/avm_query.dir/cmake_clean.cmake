file(REMOVE_RECURSE
  "CMakeFiles/avm_query.dir/optimized_join.cc.o"
  "CMakeFiles/avm_query.dir/optimized_join.cc.o.d"
  "CMakeFiles/avm_query.dir/query_planner.cc.o"
  "CMakeFiles/avm_query.dir/query_planner.cc.o.d"
  "libavm_query.a"
  "libavm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
