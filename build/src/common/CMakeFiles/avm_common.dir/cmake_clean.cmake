file(REMOVE_RECURSE
  "CMakeFiles/avm_common.dir/logging.cc.o"
  "CMakeFiles/avm_common.dir/logging.cc.o.d"
  "CMakeFiles/avm_common.dir/rng.cc.o"
  "CMakeFiles/avm_common.dir/rng.cc.o.d"
  "CMakeFiles/avm_common.dir/status.cc.o"
  "CMakeFiles/avm_common.dir/status.cc.o.d"
  "CMakeFiles/avm_common.dir/string_util.cc.o"
  "CMakeFiles/avm_common.dir/string_util.cc.o.d"
  "libavm_common.a"
  "libavm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
