# Empty compiler generated dependencies file for avm_common.
# This may be replaced when dependencies are built.
