file(REMOVE_RECURSE
  "libavm_common.a"
)
