file(REMOVE_RECURSE
  "CMakeFiles/avm_workload.dir/geo.cc.o"
  "CMakeFiles/avm_workload.dir/geo.cc.o.d"
  "CMakeFiles/avm_workload.dir/ptf.cc.o"
  "CMakeFiles/avm_workload.dir/ptf.cc.o.d"
  "libavm_workload.a"
  "libavm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
