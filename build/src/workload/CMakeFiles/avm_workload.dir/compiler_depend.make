# Empty compiler generated dependencies file for avm_workload.
# This may be replaced when dependencies are built.
