file(REMOVE_RECURSE
  "libavm_workload.a"
)
