file(REMOVE_RECURSE
  "CMakeFiles/avm_shape.dir/chunk_footprint.cc.o"
  "CMakeFiles/avm_shape.dir/chunk_footprint.cc.o.d"
  "CMakeFiles/avm_shape.dir/delta_shape.cc.o"
  "CMakeFiles/avm_shape.dir/delta_shape.cc.o.d"
  "CMakeFiles/avm_shape.dir/shape.cc.o"
  "CMakeFiles/avm_shape.dir/shape.cc.o.d"
  "libavm_shape.a"
  "libavm_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
