
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shape/chunk_footprint.cc" "src/shape/CMakeFiles/avm_shape.dir/chunk_footprint.cc.o" "gcc" "src/shape/CMakeFiles/avm_shape.dir/chunk_footprint.cc.o.d"
  "/root/repo/src/shape/delta_shape.cc" "src/shape/CMakeFiles/avm_shape.dir/delta_shape.cc.o" "gcc" "src/shape/CMakeFiles/avm_shape.dir/delta_shape.cc.o.d"
  "/root/repo/src/shape/shape.cc" "src/shape/CMakeFiles/avm_shape.dir/shape.cc.o" "gcc" "src/shape/CMakeFiles/avm_shape.dir/shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/array/CMakeFiles/avm_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
