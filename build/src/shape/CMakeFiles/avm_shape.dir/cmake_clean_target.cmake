file(REMOVE_RECURSE
  "libavm_shape.a"
)
