# Empty dependencies file for avm_shape.
# This may be replaced when dependencies are built.
