
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maintenance/array_reassigner.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/array_reassigner.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/array_reassigner.cc.o.d"
  "/root/repo/src/maintenance/baseline_planner.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/baseline_planner.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/baseline_planner.cc.o.d"
  "/root/repo/src/maintenance/deletions.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/deletions.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/deletions.cc.o.d"
  "/root/repo/src/maintenance/differential_planner.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/differential_planner.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/differential_planner.cc.o.d"
  "/root/repo/src/maintenance/exact_solver.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/exact_solver.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/exact_solver.cc.o.d"
  "/root/repo/src/maintenance/executor.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/executor.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/executor.cc.o.d"
  "/root/repo/src/maintenance/history.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/history.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/history.cc.o.d"
  "/root/repo/src/maintenance/maintainer.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/maintainer.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/maintainer.cc.o.d"
  "/root/repo/src/maintenance/makespan_tracker.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/makespan_tracker.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/makespan_tracker.cc.o.d"
  "/root/repo/src/maintenance/modifications.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/modifications.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/modifications.cc.o.d"
  "/root/repo/src/maintenance/objective.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/objective.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/objective.cc.o.d"
  "/root/repo/src/maintenance/triple_gen.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/triple_gen.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/triple_gen.cc.o.d"
  "/root/repo/src/maintenance/types.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/types.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/types.cc.o.d"
  "/root/repo/src/maintenance/view_reassigner.cc" "src/maintenance/CMakeFiles/avm_maintenance.dir/view_reassigner.cc.o" "gcc" "src/maintenance/CMakeFiles/avm_maintenance.dir/view_reassigner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/view/CMakeFiles/avm_view.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/avm_join.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/avm_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/avm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/avm_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/avm_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/avm_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
