file(REMOVE_RECURSE
  "libavm_maintenance.a"
)
