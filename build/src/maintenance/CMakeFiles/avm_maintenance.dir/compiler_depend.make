# Empty compiler generated dependencies file for avm_maintenance.
# This may be replaced when dependencies are built.
