file(REMOVE_RECURSE
  "CMakeFiles/avm_maintenance.dir/array_reassigner.cc.o"
  "CMakeFiles/avm_maintenance.dir/array_reassigner.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/baseline_planner.cc.o"
  "CMakeFiles/avm_maintenance.dir/baseline_planner.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/deletions.cc.o"
  "CMakeFiles/avm_maintenance.dir/deletions.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/differential_planner.cc.o"
  "CMakeFiles/avm_maintenance.dir/differential_planner.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/exact_solver.cc.o"
  "CMakeFiles/avm_maintenance.dir/exact_solver.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/executor.cc.o"
  "CMakeFiles/avm_maintenance.dir/executor.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/history.cc.o"
  "CMakeFiles/avm_maintenance.dir/history.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/maintainer.cc.o"
  "CMakeFiles/avm_maintenance.dir/maintainer.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/makespan_tracker.cc.o"
  "CMakeFiles/avm_maintenance.dir/makespan_tracker.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/modifications.cc.o"
  "CMakeFiles/avm_maintenance.dir/modifications.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/objective.cc.o"
  "CMakeFiles/avm_maintenance.dir/objective.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/triple_gen.cc.o"
  "CMakeFiles/avm_maintenance.dir/triple_gen.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/types.cc.o"
  "CMakeFiles/avm_maintenance.dir/types.cc.o.d"
  "CMakeFiles/avm_maintenance.dir/view_reassigner.cc.o"
  "CMakeFiles/avm_maintenance.dir/view_reassigner.cc.o.d"
  "libavm_maintenance.a"
  "libavm_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
