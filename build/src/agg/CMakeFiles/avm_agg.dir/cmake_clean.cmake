file(REMOVE_RECURSE
  "CMakeFiles/avm_agg.dir/aggregates.cc.o"
  "CMakeFiles/avm_agg.dir/aggregates.cc.o.d"
  "CMakeFiles/avm_agg.dir/state_utils.cc.o"
  "CMakeFiles/avm_agg.dir/state_utils.cc.o.d"
  "libavm_agg.a"
  "libavm_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
