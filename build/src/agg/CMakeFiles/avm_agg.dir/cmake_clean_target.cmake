file(REMOVE_RECURSE
  "libavm_agg.a"
)
