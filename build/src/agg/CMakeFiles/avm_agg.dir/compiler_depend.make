# Empty compiler generated dependencies file for avm_agg.
# This may be replaced when dependencies are built.
