file(REMOVE_RECURSE
  "CMakeFiles/avm_view.dir/materialized_view.cc.o"
  "CMakeFiles/avm_view.dir/materialized_view.cc.o.d"
  "CMakeFiles/avm_view.dir/view_definition.cc.o"
  "CMakeFiles/avm_view.dir/view_definition.cc.o.d"
  "libavm_view.a"
  "libavm_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
