# Empty dependencies file for avm_view.
# This may be replaced when dependencies are built.
