file(REMOVE_RECURSE
  "libavm_view.a"
)
