file(REMOVE_RECURSE
  "CMakeFiles/avm_harness.dir/experiment.cc.o"
  "CMakeFiles/avm_harness.dir/experiment.cc.o.d"
  "libavm_harness.a"
  "libavm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
