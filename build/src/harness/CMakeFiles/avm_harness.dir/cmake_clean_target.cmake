file(REMOVE_RECURSE
  "libavm_harness.a"
)
