# Empty dependencies file for avm_harness.
# This may be replaced when dependencies are built.
