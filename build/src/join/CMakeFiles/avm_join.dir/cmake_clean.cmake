file(REMOVE_RECURSE
  "CMakeFiles/avm_join.dir/fragment_merge.cc.o"
  "CMakeFiles/avm_join.dir/fragment_merge.cc.o.d"
  "CMakeFiles/avm_join.dir/join_kernel.cc.o"
  "CMakeFiles/avm_join.dir/join_kernel.cc.o.d"
  "CMakeFiles/avm_join.dir/mapping.cc.o"
  "CMakeFiles/avm_join.dir/mapping.cc.o.d"
  "CMakeFiles/avm_join.dir/pair_enumeration.cc.o"
  "CMakeFiles/avm_join.dir/pair_enumeration.cc.o.d"
  "CMakeFiles/avm_join.dir/reference.cc.o"
  "CMakeFiles/avm_join.dir/reference.cc.o.d"
  "CMakeFiles/avm_join.dir/similarity_join.cc.o"
  "CMakeFiles/avm_join.dir/similarity_join.cc.o.d"
  "libavm_join.a"
  "libavm_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
