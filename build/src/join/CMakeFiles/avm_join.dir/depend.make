# Empty dependencies file for avm_join.
# This may be replaced when dependencies are built.
