
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/fragment_merge.cc" "src/join/CMakeFiles/avm_join.dir/fragment_merge.cc.o" "gcc" "src/join/CMakeFiles/avm_join.dir/fragment_merge.cc.o.d"
  "/root/repo/src/join/join_kernel.cc" "src/join/CMakeFiles/avm_join.dir/join_kernel.cc.o" "gcc" "src/join/CMakeFiles/avm_join.dir/join_kernel.cc.o.d"
  "/root/repo/src/join/mapping.cc" "src/join/CMakeFiles/avm_join.dir/mapping.cc.o" "gcc" "src/join/CMakeFiles/avm_join.dir/mapping.cc.o.d"
  "/root/repo/src/join/pair_enumeration.cc" "src/join/CMakeFiles/avm_join.dir/pair_enumeration.cc.o" "gcc" "src/join/CMakeFiles/avm_join.dir/pair_enumeration.cc.o.d"
  "/root/repo/src/join/reference.cc" "src/join/CMakeFiles/avm_join.dir/reference.cc.o" "gcc" "src/join/CMakeFiles/avm_join.dir/reference.cc.o.d"
  "/root/repo/src/join/similarity_join.cc" "src/join/CMakeFiles/avm_join.dir/similarity_join.cc.o" "gcc" "src/join/CMakeFiles/avm_join.dir/similarity_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agg/CMakeFiles/avm_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/avm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/avm_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/avm_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/avm_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
