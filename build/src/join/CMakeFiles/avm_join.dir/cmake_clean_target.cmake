file(REMOVE_RECURSE
  "libavm_join.a"
)
