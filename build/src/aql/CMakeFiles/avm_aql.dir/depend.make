# Empty dependencies file for avm_aql.
# This may be replaced when dependencies are built.
