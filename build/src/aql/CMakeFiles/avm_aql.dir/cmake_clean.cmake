file(REMOVE_RECURSE
  "CMakeFiles/avm_aql.dir/lexer.cc.o"
  "CMakeFiles/avm_aql.dir/lexer.cc.o.d"
  "CMakeFiles/avm_aql.dir/parser.cc.o"
  "CMakeFiles/avm_aql.dir/parser.cc.o.d"
  "CMakeFiles/avm_aql.dir/session.cc.o"
  "CMakeFiles/avm_aql.dir/session.cc.o.d"
  "libavm_aql.a"
  "libavm_aql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_aql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
