file(REMOVE_RECURSE
  "libavm_aql.a"
)
