# Empty dependencies file for avm_storage.
# This may be replaced when dependencies are built.
