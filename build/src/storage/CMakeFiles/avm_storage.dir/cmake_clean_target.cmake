file(REMOVE_RECURSE
  "libavm_storage.a"
)
