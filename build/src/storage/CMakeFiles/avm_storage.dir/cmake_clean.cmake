file(REMOVE_RECURSE
  "CMakeFiles/avm_storage.dir/chunk_store.cc.o"
  "CMakeFiles/avm_storage.dir/chunk_store.cc.o.d"
  "libavm_storage.a"
  "libavm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
