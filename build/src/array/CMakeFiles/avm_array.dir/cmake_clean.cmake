file(REMOVE_RECURSE
  "CMakeFiles/avm_array.dir/chunk.cc.o"
  "CMakeFiles/avm_array.dir/chunk.cc.o.d"
  "CMakeFiles/avm_array.dir/chunk_grid.cc.o"
  "CMakeFiles/avm_array.dir/chunk_grid.cc.o.d"
  "CMakeFiles/avm_array.dir/schema.cc.o"
  "CMakeFiles/avm_array.dir/schema.cc.o.d"
  "CMakeFiles/avm_array.dir/serialization.cc.o"
  "CMakeFiles/avm_array.dir/serialization.cc.o.d"
  "CMakeFiles/avm_array.dir/sparse_array.cc.o"
  "CMakeFiles/avm_array.dir/sparse_array.cc.o.d"
  "libavm_array.a"
  "libavm_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avm_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
