# Empty dependencies file for avm_array.
# This may be replaced when dependencies are built.
