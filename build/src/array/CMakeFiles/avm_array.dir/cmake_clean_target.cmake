file(REMOVE_RECURSE
  "libavm_array.a"
)
