
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/chunk.cc" "src/array/CMakeFiles/avm_array.dir/chunk.cc.o" "gcc" "src/array/CMakeFiles/avm_array.dir/chunk.cc.o.d"
  "/root/repo/src/array/chunk_grid.cc" "src/array/CMakeFiles/avm_array.dir/chunk_grid.cc.o" "gcc" "src/array/CMakeFiles/avm_array.dir/chunk_grid.cc.o.d"
  "/root/repo/src/array/schema.cc" "src/array/CMakeFiles/avm_array.dir/schema.cc.o" "gcc" "src/array/CMakeFiles/avm_array.dir/schema.cc.o.d"
  "/root/repo/src/array/serialization.cc" "src/array/CMakeFiles/avm_array.dir/serialization.cc.o" "gcc" "src/array/CMakeFiles/avm_array.dir/serialization.cc.o.d"
  "/root/repo/src/array/sparse_array.cc" "src/array/CMakeFiles/avm_array.dir/sparse_array.cc.o" "gcc" "src/array/CMakeFiles/avm_array.dir/sparse_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/avm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
