
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregates_test.cc" "tests/CMakeFiles/avm_tests.dir/aggregates_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/aggregates_test.cc.o.d"
  "/root/repo/tests/aql_test.cc" "tests/CMakeFiles/avm_tests.dir/aql_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/aql_test.cc.o.d"
  "/root/repo/tests/chunk_grid_test.cc" "tests/CMakeFiles/avm_tests.dir/chunk_grid_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/chunk_grid_test.cc.o.d"
  "/root/repo/tests/chunk_test.cc" "tests/CMakeFiles/avm_tests.dir/chunk_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/chunk_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/avm_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/avm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/deletions_test.cc" "tests/CMakeFiles/avm_tests.dir/deletions_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/deletions_test.cc.o.d"
  "/root/repo/tests/distributed_array_test.cc" "tests/CMakeFiles/avm_tests.dir/distributed_array_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/distributed_array_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/avm_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/footprint_test.cc" "tests/CMakeFiles/avm_tests.dir/footprint_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/footprint_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/avm_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/history_test.cc" "tests/CMakeFiles/avm_tests.dir/history_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/history_test.cc.o.d"
  "/root/repo/tests/join_kernel_test.cc" "tests/CMakeFiles/avm_tests.dir/join_kernel_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/join_kernel_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/avm_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/maintainer_test.cc" "tests/CMakeFiles/avm_tests.dir/maintainer_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/maintainer_test.cc.o.d"
  "/root/repo/tests/makespan_tracker_test.cc" "tests/CMakeFiles/avm_tests.dir/makespan_tracker_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/makespan_tracker_test.cc.o.d"
  "/root/repo/tests/mapping_test.cc" "tests/CMakeFiles/avm_tests.dir/mapping_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/mapping_test.cc.o.d"
  "/root/repo/tests/modifications_test.cc" "tests/CMakeFiles/avm_tests.dir/modifications_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/modifications_test.cc.o.d"
  "/root/repo/tests/objective_test.cc" "tests/CMakeFiles/avm_tests.dir/objective_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/objective_test.cc.o.d"
  "/root/repo/tests/paper_example_test.cc" "tests/CMakeFiles/avm_tests.dir/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/paper_example_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/avm_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/avm_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/recursive_view_test.cc" "tests/CMakeFiles/avm_tests.dir/recursive_view_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/recursive_view_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/avm_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/avm_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/serialization_test.cc" "tests/CMakeFiles/avm_tests.dir/serialization_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/serialization_test.cc.o.d"
  "/root/repo/tests/shape_test.cc" "tests/CMakeFiles/avm_tests.dir/shape_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/shape_test.cc.o.d"
  "/root/repo/tests/similarity_join_test.cc" "tests/CMakeFiles/avm_tests.dir/similarity_join_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/similarity_join_test.cc.o.d"
  "/root/repo/tests/sparse_array_test.cc" "tests/CMakeFiles/avm_tests.dir/sparse_array_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/sparse_array_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/avm_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/string_util_test.cc" "tests/CMakeFiles/avm_tests.dir/string_util_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/string_util_test.cc.o.d"
  "/root/repo/tests/triple_gen_test.cc" "tests/CMakeFiles/avm_tests.dir/triple_gen_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/triple_gen_test.cc.o.d"
  "/root/repo/tests/view_geometry_test.cc" "tests/CMakeFiles/avm_tests.dir/view_geometry_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/view_geometry_test.cc.o.d"
  "/root/repo/tests/view_test.cc" "tests/CMakeFiles/avm_tests.dir/view_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/view_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/avm_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/avm_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aql/CMakeFiles/avm_aql.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/avm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/avm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/avm_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/avm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/avm_view.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/avm_join.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/avm_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/avm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/avm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/avm_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/avm_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
