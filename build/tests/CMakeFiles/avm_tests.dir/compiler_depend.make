# Empty compiler generated dependencies file for avm_tests.
# This may be replaced when dependencies are built.
