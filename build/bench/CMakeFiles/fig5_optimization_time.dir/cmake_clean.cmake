file(REMOVE_RECURSE
  "CMakeFiles/fig5_optimization_time.dir/fig5_optimization_time.cc.o"
  "CMakeFiles/fig5_optimization_time.dir/fig5_optimization_time.cc.o.d"
  "fig5_optimization_time"
  "fig5_optimization_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_optimization_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
