# Empty dependencies file for fig5_optimization_time.
# This may be replaced when dependencies are built.
