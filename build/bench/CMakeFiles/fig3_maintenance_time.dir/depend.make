# Empty dependencies file for fig3_maintenance_time.
# This may be replaced when dependencies are built.
