file(REMOVE_RECURSE
  "CMakeFiles/ablation_reassignment.dir/ablation_reassignment.cc.o"
  "CMakeFiles/ablation_reassignment.dir/ablation_reassignment.cc.o.d"
  "ablation_reassignment"
  "ablation_reassignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reassignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
