# Empty dependencies file for ablation_reassignment.
# This may be replaced when dependencies are built.
