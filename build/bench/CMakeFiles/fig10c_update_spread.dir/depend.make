# Empty dependencies file for fig10c_update_spread.
# This may be replaced when dependencies are built.
