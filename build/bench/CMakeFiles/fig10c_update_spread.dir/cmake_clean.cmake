file(REMOVE_RECURSE
  "CMakeFiles/fig10c_update_spread.dir/fig10c_update_spread.cc.o"
  "CMakeFiles/fig10c_update_spread.dir/fig10c_update_spread.cc.o.d"
  "fig10c_update_spread"
  "fig10c_update_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_update_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
