# Empty compiler generated dependencies file for fig10b_num_batches.
# This may be replaced when dependencies are built.
