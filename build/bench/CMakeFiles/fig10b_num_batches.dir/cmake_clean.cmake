file(REMOVE_RECURSE
  "CMakeFiles/fig10b_num_batches.dir/fig10b_num_batches.cc.o"
  "CMakeFiles/fig10b_num_batches.dir/fig10b_num_batches.cc.o.d"
  "fig10b_num_batches"
  "fig10b_num_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_num_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
