file(REMOVE_RECURSE
  "CMakeFiles/fig10a_batch_size.dir/fig10a_batch_size.cc.o"
  "CMakeFiles/fig10a_batch_size.dir/fig10a_batch_size.cc.o.d"
  "fig10a_batch_size"
  "fig10a_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
