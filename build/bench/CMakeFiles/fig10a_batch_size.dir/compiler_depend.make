# Empty compiler generated dependencies file for fig10a_batch_size.
# This may be replaced when dependencies are built.
