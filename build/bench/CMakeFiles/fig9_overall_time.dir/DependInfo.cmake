
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_overall_time.cc" "bench/CMakeFiles/fig9_overall_time.dir/fig9_overall_time.cc.o" "gcc" "bench/CMakeFiles/fig9_overall_time.dir/fig9_overall_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/avm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/avm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/avm_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/avm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/avm_view.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/avm_join.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/avm_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/avm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/avm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/avm_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/avm_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/avm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
