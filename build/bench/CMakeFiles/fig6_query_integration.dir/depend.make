# Empty dependencies file for fig6_query_integration.
# This may be replaced when dependencies are built.
