file(REMOVE_RECURSE
  "CMakeFiles/fig6_query_integration.dir/fig6_query_integration.cc.o"
  "CMakeFiles/fig6_query_integration.dir/fig6_query_integration.cc.o.d"
  "fig6_query_integration"
  "fig6_query_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_query_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
