# Empty dependencies file for query_advisor.
# This may be replaced when dependencies are built.
