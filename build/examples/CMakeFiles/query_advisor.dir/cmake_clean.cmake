file(REMOVE_RECURSE
  "CMakeFiles/query_advisor.dir/query_advisor.cpp.o"
  "CMakeFiles/query_advisor.dir/query_advisor.cpp.o.d"
  "query_advisor"
  "query_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
