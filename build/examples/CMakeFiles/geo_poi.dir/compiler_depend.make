# Empty compiler generated dependencies file for geo_poi.
# This may be replaced when dependencies are built.
