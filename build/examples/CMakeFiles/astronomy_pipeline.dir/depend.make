# Empty dependencies file for astronomy_pipeline.
# This may be replaced when dependencies are built.
