file(REMOVE_RECURSE
  "CMakeFiles/astronomy_pipeline.dir/astronomy_pipeline.cpp.o"
  "CMakeFiles/astronomy_pipeline.dir/astronomy_pipeline.cpp.o.d"
  "astronomy_pipeline"
  "astronomy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astronomy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
